"""Fleet-backend compiler: the fault model over struct-of-arrays rounds.

The fleet engine (:mod:`repro.simulator.fleet`) advances ``B`` instances
in lockstep rounds over per-direction ``flight[B, n]`` columns.  This
module lowers a :class:`~repro.faults.model.FaultModel` onto that loop:

* **random channel faults** roll once per *(instance, round, channel)*
  — the fleet's notion of a fault opportunity (event channels roll per
  send; same declarative rates, per-backend opportunity grain).  Drops
  thin the in-flight population pulse-by-pulse (each of the ``f`` pulses
  on a channel rolls independently), duplicates/spurious add at most one
  pulse per channel per round.
* **deterministic drops** (:class:`~repro.faults.model.PulseDrop`)
  reproduce the fleet's historical ``FleetFault`` semantics exactly.
* **crashes** evaporate all deliveries toward the node while down (its
  state freezes: nothing is delivered, its pending is empty at round
  boundaries, so the kernels never touch it); a restart resets the node
  via the kernel's fresh-state semantics and re-sends its init pulse.
* **corruption** overwrites one materialized column value at the start
  of its round (fields pre-validated against the kernel ``SCHEMA``).

Every decision is a counter-based roll keyed on the **global** instance
index (``instance_offset + row``), so a counterexample replayed solo at
the same global index sees the identical fault pattern.  The NumPy and
pure-Python applications are written as exact twins (same clause order,
same roll coordinates) — the fleet differential tests pin this
bit-for-bit.

Lap-skips and faults: fault opportunities are defined per fleet *round*,
and a lap-skip compresses laps **within** one round, so skipping changes
no fault decision.  Node crashes are the exception — a skip would relay
pulses through a node that must absorb nothing — so a model with crash
clauses disables the skip fast-paths (correctness over throughput; the
recovery harness caps rounds with a watchdog anyway).  Correlated
:class:`~repro.faults.model.FaultGroup` clauses and the probabilistic
``crash_rate`` knob disable skips for the same reason, plus one more: a
threshold-crossing trigger must *visit* the crossing round, which a
closed-form lap jump would skip straight past.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.faults.model import (
    _KEY_CHANNEL,
    _KEY_INSTANCE,
    _KEY_PULSE,
    _KEY_ROUND,
    _MIX_A,
    _MIX_B,
    _TWO64,
    KIND_CRASH,
    KIND_DROP,
    KIND_DUPLICATE,
    KIND_SPURIOUS,
    FaultModel,
    corruptible_fields,
    mix64,
    rate_threshold,
    roll_u64,
)

#: Event-counter keys shared by every fleet fault adapter (same totals on
#: both backends; the differential tests compare the dicts directly).
EVENT_KEYS = (
    "dropped",
    "duplicated",
    "injected",
    "det_dropped",
    "crash_lost",
    "restarts",
    "corruptions",
)


def _fresh_events() -> Dict[str, int]:
    return {key: 0 for key in EVENT_KEYS}


def merge_events(*dicts: Optional[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-kind fault-event counters across adapters."""
    merged = _fresh_events()
    for events in dicts:
        if events:
            for key, value in events.items():
                merged[key] = merged.get(key, 0) + value
    return merged


def _check_node(node: int, n: int, what: str) -> None:
    if not 0 <= node < n:
        raise ConfigurationError(
            f"{what} targets node {node}, outside the ring [0, {n})"
        )


def _np_rolls(
    np_mod: Any,
    seed: int,
    kind: int,
    round_index: int,
    pulse: int,
    instance_offset: int,
    n_rows: int,
    chan_base: int,
    n: int,
) -> Any:
    """Vectorized :func:`~repro.faults.model.roll_u64`: uint64 ``[B, n]``."""
    u64 = np_mod.uint64
    with np_mod.errstate(over="ignore"):
        b = (u64(instance_offset) + np_mod.arange(n_rows, dtype=u64))[:, None]
        c = (u64(chan_base) + np_mod.arange(n, dtype=u64))[None, :]
        x = (
            u64(mix64(seed))
            + u64(kind)
            + b * u64(_KEY_INSTANCE)
            + u64(round_index % _TWO64) * u64(_KEY_ROUND)
            + c * u64(_KEY_CHANNEL)
            + u64(pulse) * u64(_KEY_PULSE)
        )
        x = (x ^ (x >> u64(33))) * u64(_MIX_A)
        x = (x ^ (x >> u64(33))) * u64(_MIX_B)
        x = x ^ (x >> u64(33))
    return x


def _np_under(np_mod: Any, rolls: Any, threshold: int) -> Any:
    """``roll < threshold`` with the 2**64 (certain) threshold handled."""
    if threshold >= _TWO64:
        return np_mod.ones(rolls.shape, dtype=bool)
    return rolls < np_mod.uint64(threshold)


def _np_group_sel(
    np_mod: Any, group: Any, live: Any, instance_offset: int, B: int
) -> Any:
    """Row mask a group may touch: live rows, or the one targeted row."""
    if group.instance is None:
        return live
    sel = np_mod.zeros(B, bool)
    row = group.instance - instance_offset
    if 0 <= row < B:
        sel[row] = live[row]
    return sel


def _np_rate_mask(
    np_mod: Any, model: FaultModel, instance_offset: int, B: int, n: int
) -> Any:
    """The ``crash_rate`` dead-node mask (bool ``[B, n]``): one roll per
    (global instance, node) — channel base 0 in every adapter, so both
    directional runs agree which nodes are dead."""
    rolls = _np_rolls(
        np_mod, model.seed, KIND_CRASH, 0, 0, instance_offset, B, 0, n
    )
    return _np_under(np_mod, rolls, rate_threshold(model.crash_rate))


def _py_rate_mask(model: FaultModel, instance: int, n: int) -> List[bool]:
    """Scalar twin of :func:`_np_rate_mask` for one global instance."""
    threshold = rate_threshold(model.crash_rate)
    return [
        roll_u64(model.seed, KIND_CRASH, instance, 0, v, 0) < threshold
        for v in range(n)
    ]


def _apply_random_np(
    np_mod: Any,
    model: FaultModel,
    events: Dict[str, int],
    round_index: int,
    flight: Any,
    instance_offset: int,
    chan_base: int,
    live: Any,
    window: Any = None,
) -> None:
    """Random drop/dup/spurious over one direction's flight (in place).

    ``live`` is a bool ``[B]`` row mask: rows whose instance already
    quiesced are frozen — the pure-Python twin's per-instance loop has
    exited by then, so the batch must stop rolling faults for them too
    (fault streams must not depend on batch composition).

    ``window`` (bool ``[B]`` or None) is the group-burst gate: when the
    model carries group bursts, the rates fire only in rows whose burst
    window is active *this* round (replacing the model-level
    ``covers`` gate, which per-row fire rounds make meaningless).
    """
    if window is None:
        if not model.covers(round_index):
            return
        active = live
    else:
        active = live & window
        if not active.any():
            return
    B, n = flight.shape
    rows = active[:, None]
    t_drop = rate_threshold(model.drop_rate)
    t_dup = rate_threshold(model.duplicate_rate)
    t_spur = rate_threshold(model.spurious_rate)
    if t_drop:
        fmax = int(flight.max())
        if fmax:
            removed = np_mod.zeros_like(flight)
            for j in range(fmax):
                rolls = _np_rolls(
                    np_mod, model.seed, KIND_DROP, round_index, j,
                    instance_offset, B, chan_base, n,
                )
                removed += _np_under(np_mod, rolls, t_drop) & (flight > j) & rows
            flight -= removed
            events["dropped"] += int(removed.sum())
    if t_dup:
        rolls = _np_rolls(
            np_mod, model.seed, KIND_DUPLICATE, round_index, 0,
            instance_offset, B, chan_base, n,
        )
        hit = _np_under(np_mod, rolls, t_dup) & (flight > 0) & rows
        flight += hit
        events["duplicated"] += int(hit.sum())
    if t_spur:
        rolls = _np_rolls(
            np_mod, model.seed, KIND_SPURIOUS, round_index, 0,
            instance_offset, B, chan_base, n,
        )
        hit = _np_under(np_mod, rolls, t_spur) & rows
        flight += hit
        events["injected"] += int(hit.sum())


def _apply_random_py(
    model: FaultModel,
    events: Dict[str, int],
    round_index: int,
    flight: List[int],
    instance: int,
    chan_base: int,
    window: Any = None,
) -> None:
    """Scalar twin of :func:`_apply_random_np` for one instance;
    ``window`` is the scalar group-burst gate (bool, or None for the
    model-level ``covers`` gate)."""
    if window is None:
        if not model.covers(round_index):
            return
    elif not window:
        return
    n = len(flight)
    t_drop = rate_threshold(model.drop_rate)
    t_dup = rate_threshold(model.duplicate_rate)
    t_spur = rate_threshold(model.spurious_rate)
    if t_drop:
        for v in range(n):
            hits = 0
            for j in range(flight[v]):
                roll = roll_u64(
                    model.seed, KIND_DROP, instance, round_index, chan_base + v, j
                )
                if roll < t_drop:
                    hits += 1
            if hits:
                flight[v] -= hits
                events["dropped"] += hits
    if t_dup:
        for v in range(n):
            if flight[v] > 0:
                roll = roll_u64(
                    model.seed, KIND_DUPLICATE, instance, round_index,
                    chan_base + v, 0,
                )
                if roll < t_dup:
                    flight[v] += 1
                    events["duplicated"] += 1
    if t_spur:
        for v in range(n):
            roll = roll_u64(
                model.seed, KIND_SPURIOUS, instance, round_index,
                chan_base + v, 0,
            )
            if roll < t_spur:
                flight[v] += 1
                events["injected"] += 1


class DirectionFaults:
    """A :class:`FaultModel` compiled onto one directional warmup-kernel
    fleet run (Algorithm 1, or one half of Algorithm 3).

    The direction run materializes exactly two counter columns — its
    ``rho`` and ``sigma`` — so corruption clauses naming the *other*
    direction's fields are silently owned by the twin adapter (the
    caller compiles one adapter per direction).
    """

    def __init__(
        self,
        model: FaultModel,
        n: int,
        direction: str,
        shift: int,
        chan_base: int,
        algorithm: str,
    ) -> None:
        self.model = model
        self.n = n
        self.direction = direction
        self.shift = shift
        self.chan_base = chan_base
        allowed = corruptible_fields(algorithm)
        for corruption in model.corruptions:
            if corruption.field not in allowed:
                raise ConfigurationError(
                    f"cannot corrupt field {corruption.field!r} of algorithm "
                    f"{algorithm!r}; schema-validated targets: {list(allowed)}"
                )
            _check_node(corruption.node, n, "corruption")
        for crash in model.crashes:
            _check_node(crash.node, n, "crash")
        for drop in model.drops:
            _check_node(drop.node, n, "pulse-drop")
        self.drops = tuple(d for d in model.drops if d.direction == direction)
        rho_field = "rho_cw" if direction == "cw" else "rho_ccw"
        sigma_field = "sigma_cw" if direction == "cw" else "sigma_ccw"
        self._owned = {rho_field: "rho", sigma_field: "sigma"}
        self.corruptions = tuple(
            c for c in model.corruptions if c.field in self._owned
        )
        self.groups = model.groups
        for group in model.groups:
            _check_node(group.anchor, n, "group anchor")
        #: Per-group fire rounds: lazily-allocated int64 ``[B]`` (0 =
        #: unfired) on the NumPy path, {global instance: fire} dicts on
        #: the scalar path.  Fire rounds are pure functions of each
        #: instance's own trajectory, so any shard layout agrees.
        self._group_fire_np: Optional[List[Any]] = None
        self._group_fire_py: List[Dict[int, int]] = [{} for _ in model.groups]
        self._rate_mask_np: Any = None
        self._rate_mask_py: Dict[int, List[bool]] = {}
        #: Lap/hop skips relay pulses through every node, which a crashed
        #: node must not do — crash models run skip-free (see module doc).
        #: Groups and crash_rate also need every round visited: threshold
        #: triggers must observe the crossing round itself.
        self.allow_skips = not (model.crashes or model.groups or model.crash_rate)
        self.events = _fresh_events()

    # -- correlated-group lowering (np side) -----------------------------

    def _np_groups_begin(
        self,
        np_mod: Any,
        round_index: int,
        rho: Any,
        sigma: Any,
        live: Any,
        instance_offset: int,
        B: int,
    ) -> Any:
        """Advance per-row trigger state; returns the burst-window row
        mask (bool ``[B]``) when the model carries group bursts, else
        None.  Trigger fields are read *before* any clause mutates the
        columns this round (same position in the scalar twin)."""
        if not self.groups:
            return None
        if self._group_fire_np is None:
            self._group_fire_np = [
                np_mod.zeros(B, np_mod.int64) for _ in self.groups
            ]
        window = np_mod.zeros(B, bool) if self.model.has_group_bursts else None
        for group, fire in zip(self.groups, self._group_fire_np):
            sel = _np_group_sel(np_mod, group, live, instance_offset, B)
            unfired = fire == 0
            if group.at_round is not None:
                newly = sel & unfired if round_index == group.at_round else None
            else:
                vals = (rho if group.trigger_field == "rho" else sigma)[
                    :, group.anchor
                ]
                newly = sel & unfired & (vals >= group.trigger_threshold)
            if newly is not None and newly.any():
                fire[newly] = round_index
            if window is not None and group.burst is not None:
                fired = sel & (fire > 0)
                if fired.any():
                    rel = round_index - fire + 1
                    cov = rel >= group.burst.start
                    if group.burst.length is not None:
                        cov &= rel < group.burst.start + group.burst.length
                    window |= fired & cov
        return window

    def _np_group_drops(
        self,
        np_mod: Any,
        round_index: int,
        flight: Any,
        live: Any,
        instance_offset: int,
        B: int,
        n: int,
    ) -> None:
        for group, fire in zip(self.groups, self._group_fire_np or ()):
            sel = _np_group_sel(np_mod, group, live, instance_offset, B)
            fired = sel & (fire > 0)
            if not fired.any():
                continue
            for drop in group.drops:
                if drop.direction != self.direction:
                    continue
                rows = fired & (fire + drop.offset == round_index)
                if not rows.any():
                    continue
                node = (group.anchor + drop.node_offset) % n
                removed = np_mod.where(
                    rows, np_mod.minimum(flight[:, node], drop.count), 0
                )
                flight[:, node] -= removed
                self.events["det_dropped"] += int(removed.sum())

    def _np_group_crashes(
        self,
        np_mod: Any,
        round_index: int,
        rho: Any,
        sigma: Any,
        flight: Any,
        live: Any,
        instance_offset: int,
        B: int,
        n: int,
        extra: Any,
    ) -> Any:
        for group, fire in zip(self.groups, self._group_fire_np or ()):
            if not group.crash:
                continue
            sel = _np_group_sel(np_mod, group, live, instance_offset, B)
            fired = sel & (fire > 0)
            if not fired.any():
                continue
            if group.restart_after is None:
                down = fired
                restart = None
            else:
                down = fired & (round_index < fire + group.restart_after)
                restart = fired & (round_index == fire + group.restart_after)
            if down.any():
                lost = np_mod.where(down, flight[:, group.anchor], 0)
                self.events["crash_lost"] += int(lost.sum())
                flight[down, group.anchor] = 0
            if restart is not None and restart.any():
                rho[restart, group.anchor] = 0
                sigma[restart, group.anchor] = 1
                flight[restart, (group.anchor + self.shift) % n] += 1
                self.events["restarts"] += int(restart.sum())
                if extra is None:
                    extra = np_mod.zeros(B, np_mod.int64)
                extra[restart] += 1
        return extra

    def _np_crash_rate(
        self,
        np_mod: Any,
        flight: Any,
        live: Any,
        instance_offset: int,
        B: int,
        n: int,
    ) -> None:
        if not self.model.crash_rate:
            return
        if self._rate_mask_np is None:
            self._rate_mask_np = _np_rate_mask(
                np_mod, self.model, instance_offset, B, n
            )
        dead = self._rate_mask_np & live[:, None]
        lost = np_mod.where(dead, flight, 0)
        self.events["crash_lost"] += int(lost.sum())
        flight[dead] = 0

    # -- correlated-group lowering (scalar twin) -------------------------

    def _py_groups_begin(
        self, round_index: int, instance: int, states: List[Any]
    ) -> Any:
        """Scalar twin of :meth:`_np_groups_begin` for one instance."""
        if not self.groups:
            return None
        window = False if self.model.has_group_bursts else None
        for i, group in enumerate(self.groups):
            if group.instance is not None and group.instance != instance:
                continue
            fire = self._group_fire_py[i].get(instance, 0)
            if fire == 0:
                if group.at_round is not None:
                    if round_index == group.at_round:
                        fire = round_index
                else:
                    attr = (
                        "rho_cw" if group.trigger_field == "rho" else "sigma_cw"
                    )
                    if getattr(states[group.anchor], attr) >= group.trigger_threshold:
                        fire = round_index
                if fire:
                    self._group_fire_py[i][instance] = fire
            if window is not None and fire and group.burst_active(round_index, fire):
                window = True
        return window

    def _py_group_drops(
        self, round_index: int, instance: int, flight: List[int]
    ) -> None:
        n = self.n
        for i, group in enumerate(self.groups):
            if group.instance is not None and group.instance != instance:
                continue
            fire = self._group_fire_py[i].get(instance, 0)
            if not fire:
                continue
            for drop in group.drops:
                if drop.direction != self.direction:
                    continue
                if fire + drop.offset != round_index:
                    continue
                node = (group.anchor + drop.node_offset) % n
                removed = min(flight[node], drop.count)
                flight[node] -= removed
                self.events["det_dropped"] += removed

    def _py_group_crashes(
        self,
        round_index: int,
        instance: int,
        gov: List[int],
        states: List[Any],
        flight: List[int],
        kernel: Any,
    ) -> int:
        n = self.n
        extra = 0
        for i, group in enumerate(self.groups):
            if not group.crash:
                continue
            if group.instance is not None and group.instance != instance:
                continue
            fire = self._group_fire_py[i].get(instance, 0)
            if not fire:
                continue
            if group.down(round_index, fire):
                self.events["crash_lost"] += flight[group.anchor]
                flight[group.anchor] = 0
            elif group.restarts_at(round_index, fire):
                states[group.anchor] = kernel.make_state(gov[group.anchor])
                _, emissions, _ = kernel.init(states[group.anchor])
                for _port, cnt in emissions:
                    flight[(group.anchor + self.shift) % n] += cnt
                    extra += cnt
                self.events["restarts"] += 1
        return extra

    def _py_crash_rate(self, instance: int, flight: List[int]) -> None:
        if not self.model.crash_rate:
            return
        mask = self._rate_mask_py.get(instance)
        if mask is None:
            mask = _py_rate_mask(self.model, instance, self.n)
            self._rate_mask_py[instance] = mask
        for v in range(self.n):
            if mask[v]:
                self.events["crash_lost"] += flight[v]
                flight[v] = 0

    def apply_np(
        self,
        np_mod: Any,
        round_index: int,
        rho: Any,
        sigma: Any,
        flight: Any,
        instance_offset: int,
        live: Any,
    ) -> Any:
        """Mutate the columns for one round start; returns extra sends
        (0, or an int64 ``[B]`` array when a restart re-init sent pulses).

        ``live`` is a bool ``[B]`` mask of rows that have not yet
        quiesced; quiesced rows are frozen (the pure-Python twin's
        per-instance loop has already exited for them)."""
        B, n = flight.shape
        extra = None
        window = self._np_groups_begin(
            np_mod, round_index, rho, sigma, live, instance_offset, B
        )
        for drop in self.drops:
            if drop.round_index != round_index:
                continue
            if drop.instance is None:
                removed = np_mod.where(
                    live, np_mod.minimum(flight[:, drop.node], drop.count), 0
                )
                flight[:, drop.node] -= removed
                self.events["det_dropped"] += int(removed.sum())
            else:
                row = drop.instance - instance_offset
                if 0 <= row < B and live[row]:
                    removed = min(int(flight[row, drop.node]), drop.count)
                    flight[row, drop.node] -= removed
                    self.events["det_dropped"] += removed
        self._np_group_drops(
            np_mod, round_index, flight, live, instance_offset, B, n
        )
        for crash in self.model.crashes:
            if crash.instance is None:
                rows: Any = live
                count = int(np_mod.sum(live))
            else:
                row = crash.instance - instance_offset
                if not (0 <= row < B and live[row]):
                    continue
                rows = row
                count = 1
            if count == 0:
                continue
            if crash.down(round_index):
                lost = flight[rows, crash.node]
                self.events["crash_lost"] += int(np_mod.sum(lost))
                flight[rows, crash.node] = 0
            elif crash.restarts_at(round_index):
                rho[rows, crash.node] = 0
                sigma[rows, crash.node] = 1
                flight[rows, (crash.node + self.shift) % n] += 1
                self.events["restarts"] += count
                if extra is None:
                    extra = np_mod.zeros(B, np_mod.int64)
                extra[rows] += 1
        self._np_crash_rate(np_mod, flight, live, instance_offset, B, n)
        extra = self._np_group_crashes(
            np_mod, round_index, rho, sigma, flight, live, instance_offset,
            B, n, extra,
        )
        _apply_random_np(
            np_mod, self.model, self.events, round_index, flight,
            instance_offset, self.chan_base, live, window,
        )
        for corruption in self.corruptions:
            if corruption.at_round != round_index:
                continue
            target = rho if self._owned[corruption.field] == "rho" else sigma
            if corruption.instance is None:
                target[live, corruption.node] = corruption.value
                self.events["corruptions"] += int(np_mod.sum(live))
            else:
                row = corruption.instance - instance_offset
                if 0 <= row < B and live[row]:
                    target[row, corruption.node] = corruption.value
                    self.events["corruptions"] += 1
        return 0 if extra is None else extra

    def apply_py(
        self,
        round_index: int,
        instance: int,
        gov: List[int],
        states: List[Any],
        flight: List[int],
        kernel: Any,
    ) -> int:
        """Scalar twin of :meth:`apply_np` for global ``instance``;
        returns the number of extra pulses sent (restart re-inits)."""
        n = self.n
        extra = 0
        window = self._py_groups_begin(round_index, instance, states)
        for drop in self.drops:
            if drop.round_index != round_index:
                continue
            if drop.instance is None or drop.instance == instance:
                removed = min(flight[drop.node], drop.count)
                flight[drop.node] -= removed
                self.events["det_dropped"] += removed
        self._py_group_drops(round_index, instance, flight)
        for crash in self.model.crashes:
            if crash.instance is not None and crash.instance != instance:
                continue
            if crash.down(round_index):
                self.events["crash_lost"] += flight[crash.node]
                flight[crash.node] = 0
            elif crash.restarts_at(round_index):
                states[crash.node] = kernel.make_state(gov[crash.node])
                _, emissions, _ = kernel.init(states[crash.node])
                for _port, cnt in emissions:
                    flight[(crash.node + self.shift) % n] += cnt
                    extra += cnt
                self.events["restarts"] += 1
        self._py_crash_rate(instance, flight)
        extra += self._py_group_crashes(
            round_index, instance, gov, states, flight, kernel
        )
        _apply_random_py(
            self.model, self.events, round_index, flight, instance,
            self.chan_base, window,
        )
        for corruption in self.corruptions:
            if corruption.at_round != round_index:
                continue
            if corruption.instance is None or corruption.instance == instance:
                attr = (
                    "rho_cw"
                    if self._owned[corruption.field] == "rho"
                    else "sigma_cw"
                )
                setattr(states[corruption.node], attr, corruption.value)
                self.events["corruptions"] += 1
        return extra


#: Terminating-kernel column spellings for corruptible schema fields.
_TERMINATING_COLS = {
    "rho_cw": "rho_cw",
    "sigma_cw": "sigma_cw",
    "rho_ccw": "rho_ccw",
    "sigma_ccw": "sigma_ccw",
    "pending_cw": "pend_cw",
    "pending_ccw": "pend_ccw",
}


class TerminatingFaults:
    """A :class:`FaultModel` compiled onto the terminating fleet run
    (Algorithm 2: both directions in one round loop, CW channels at
    indices ``[0, n)`` and CCW at ``[n, 2n)`` — the seeded scheduler's
    layout)."""

    def __init__(self, model: FaultModel, n: int) -> None:
        self.model = model
        self.n = n
        allowed = corruptible_fields("terminating")
        for corruption in model.corruptions:
            if corruption.field not in allowed:
                raise ConfigurationError(
                    f"cannot corrupt field {corruption.field!r} of algorithm "
                    f"'terminating'; schema-validated targets: {list(allowed)}"
                )
            _check_node(corruption.node, n, "corruption")
        for crash in model.crashes:
            _check_node(crash.node, n, "crash")
        for drop in model.drops:
            _check_node(drop.node, n, "pulse-drop")
        self.cw_drops = tuple(d for d in model.drops if d.direction == "cw")
        self.ccw_drops = tuple(d for d in model.drops if d.direction == "ccw")
        self.groups = model.groups
        for group in model.groups:
            _check_node(group.anchor, n, "group anchor")
        self._group_fire_np: Optional[List[Any]] = None
        self._group_fire_py: List[Dict[int, int]] = [{} for _ in model.groups]
        self._rate_mask_np: Any = None
        self._rate_mask_py: Dict[int, List[bool]] = {}
        self.allow_skips = not (model.crashes or model.groups or model.crash_rate)
        self.events = _fresh_events()

    # -- correlated-group lowering (np side; trigger fields read from the
    # terminating run's primary-direction columns rho_cw/sigma_cw) ------

    def _np_groups_begin(
        self,
        np_mod: Any,
        round_index: int,
        cols: Any,
        live: Any,
        instance_offset: int,
        B: int,
    ) -> Any:
        if not self.groups:
            return None
        if self._group_fire_np is None:
            self._group_fire_np = [
                np_mod.zeros(B, np_mod.int64) for _ in self.groups
            ]
        window = np_mod.zeros(B, bool) if self.model.has_group_bursts else None
        for group, fire in zip(self.groups, self._group_fire_np):
            sel = _np_group_sel(np_mod, group, live, instance_offset, B)
            unfired = fire == 0
            if group.at_round is not None:
                newly = sel & unfired if round_index == group.at_round else None
            else:
                source = (
                    cols.rho_cw if group.trigger_field == "rho" else cols.sigma_cw
                )
                vals = source[:, group.anchor]
                newly = sel & unfired & (vals >= group.trigger_threshold)
            if newly is not None and newly.any():
                fire[newly] = round_index
            if window is not None and group.burst is not None:
                fired = sel & (fire > 0)
                if fired.any():
                    rel = round_index - fire + 1
                    cov = rel >= group.burst.start
                    if group.burst.length is not None:
                        cov &= rel < group.burst.start + group.burst.length
                    window |= fired & cov
        return window

    def _np_group_drops(
        self,
        np_mod: Any,
        round_index: int,
        cw_flight: Any,
        ccw_flight: Any,
        live: Any,
        instance_offset: int,
        B: int,
        n: int,
    ) -> None:
        for group, fire in zip(self.groups, self._group_fire_np or ()):
            sel = _np_group_sel(np_mod, group, live, instance_offset, B)
            fired = sel & (fire > 0)
            if not fired.any():
                continue
            for drop in group.drops:
                rows = fired & (fire + drop.offset == round_index)
                if not rows.any():
                    continue
                flight = cw_flight if drop.direction == "cw" else ccw_flight
                node = (group.anchor + drop.node_offset) % n
                removed = np_mod.where(
                    rows, np_mod.minimum(flight[:, node], drop.count), 0
                )
                flight[:, node] -= removed
                self.events["det_dropped"] += int(removed.sum())

    def _np_group_crashes(
        self,
        np_mod: Any,
        round_index: int,
        cols: Any,
        cw_flight: Any,
        ccw_flight: Any,
        live: Any,
        instance_offset: int,
        B: int,
        n: int,
        extra: Any,
    ) -> Any:
        for group, fire in zip(self.groups, self._group_fire_np or ()):
            if not group.crash:
                continue
            sel = _np_group_sel(np_mod, group, live, instance_offset, B)
            fired = sel & (fire > 0)
            if not fired.any():
                continue
            if group.restart_after is None:
                down = fired
                restart = None
            else:
                down = fired & (round_index < fire + group.restart_after)
                restart = fired & (round_index == fire + group.restart_after)
            if down.any():
                lost = np_mod.where(
                    down,
                    cw_flight[:, group.anchor] + ccw_flight[:, group.anchor],
                    0,
                )
                self.events["crash_lost"] += int(lost.sum())
                cw_flight[down, group.anchor] = 0
                ccw_flight[down, group.anchor] = 0
            if restart is not None and restart.any():
                cols.rho_cw[restart, group.anchor] = 0
                cols.rho_ccw[restart, group.anchor] = 0
                cols.pend_cw[restart, group.anchor] = 0
                cols.pend_ccw[restart, group.anchor] = 0
                cols.sigma_cw[restart, group.anchor] = 1
                cols.sigma_ccw[restart, group.anchor] = 0
                cols.term_sent[restart, group.anchor] = False
                cols.terminated[restart, group.anchor] = False
                cols.out_leader[restart, group.anchor] = False
                cw_flight[restart, (group.anchor + 1) % n] += 1
                self.events["restarts"] += int(restart.sum())
                if extra is None:
                    extra = np_mod.zeros(B, np_mod.int64)
                extra[restart] += 1
        return extra

    def _np_crash_rate(
        self,
        np_mod: Any,
        cw_flight: Any,
        ccw_flight: Any,
        live: Any,
        instance_offset: int,
        B: int,
        n: int,
    ) -> None:
        if not self.model.crash_rate:
            return
        if self._rate_mask_np is None:
            self._rate_mask_np = _np_rate_mask(
                np_mod, self.model, instance_offset, B, n
            )
        dead = self._rate_mask_np & live[:, None]
        lost = np_mod.where(dead, cw_flight + ccw_flight, 0)
        self.events["crash_lost"] += int(lost.sum())
        cw_flight[dead] = 0
        ccw_flight[dead] = 0

    # -- correlated-group lowering (scalar twin) -------------------------

    def _py_groups_begin(
        self, round_index: int, instance: int, states: List[Any]
    ) -> Any:
        if not self.groups:
            return None
        window = False if self.model.has_group_bursts else None
        for i, group in enumerate(self.groups):
            if group.instance is not None and group.instance != instance:
                continue
            fire = self._group_fire_py[i].get(instance, 0)
            if fire == 0:
                if group.at_round is not None:
                    if round_index == group.at_round:
                        fire = round_index
                else:
                    attr = (
                        "rho_cw" if group.trigger_field == "rho" else "sigma_cw"
                    )
                    if getattr(states[group.anchor], attr) >= group.trigger_threshold:
                        fire = round_index
                if fire:
                    self._group_fire_py[i][instance] = fire
            if window is not None and fire and group.burst_active(round_index, fire):
                window = True
        return window

    def _py_group_drops(
        self,
        round_index: int,
        instance: int,
        cw_flight: List[int],
        ccw_flight: List[int],
    ) -> None:
        n = self.n
        for i, group in enumerate(self.groups):
            if group.instance is not None and group.instance != instance:
                continue
            fire = self._group_fire_py[i].get(instance, 0)
            if not fire:
                continue
            for drop in group.drops:
                if fire + drop.offset != round_index:
                    continue
                flight = cw_flight if drop.direction == "cw" else ccw_flight
                node = (group.anchor + drop.node_offset) % n
                removed = min(flight[node], drop.count)
                flight[node] -= removed
                self.events["det_dropped"] += removed

    def _py_group_crashes(
        self,
        round_index: int,
        instance: int,
        ids: List[int],
        states: List[Any],
        out_leader: List[bool],
        cw_flight: List[int],
        ccw_flight: List[int],
        kernel: Any,
    ) -> int:
        n = self.n
        extra = 0
        for i, group in enumerate(self.groups):
            if not group.crash:
                continue
            if group.instance is not None and group.instance != instance:
                continue
            fire = self._group_fire_py[i].get(instance, 0)
            if not fire:
                continue
            if group.down(round_index, fire):
                self.events["crash_lost"] += (
                    cw_flight[group.anchor] + ccw_flight[group.anchor]
                )
                cw_flight[group.anchor] = 0
                ccw_flight[group.anchor] = 0
            elif group.restarts_at(round_index, fire):
                states[group.anchor] = kernel.make_state(ids[group.anchor])
                _, emissions, _ = kernel.init(states[group.anchor])
                for _port, cnt in emissions:
                    cw_flight[(group.anchor + 1) % n] += cnt
                    extra += cnt
                out_leader[group.anchor] = False
                self.events["restarts"] += 1
        return extra

    def _py_crash_rate(
        self, instance: int, cw_flight: List[int], ccw_flight: List[int]
    ) -> None:
        if not self.model.crash_rate:
            return
        mask = self._rate_mask_py.get(instance)
        if mask is None:
            mask = _py_rate_mask(self.model, instance, self.n)
            self._rate_mask_py[instance] = mask
        for v in range(self.n):
            if mask[v]:
                self.events["crash_lost"] += cw_flight[v] + ccw_flight[v]
                cw_flight[v] = 0
                ccw_flight[v] = 0

    def _det_drops_np(
        self,
        np_mod: Any,
        drops: Tuple[Any, ...],
        round_index: int,
        flight: Any,
        instance_offset: int,
        live: Any,
    ) -> None:
        B = flight.shape[0]
        for drop in drops:
            if drop.round_index != round_index:
                continue
            if drop.instance is None:
                removed = np_mod.where(
                    live, np_mod.minimum(flight[:, drop.node], drop.count), 0
                )
                flight[:, drop.node] -= removed
                self.events["det_dropped"] += int(removed.sum())
            else:
                row = drop.instance - instance_offset
                if 0 <= row < B and live[row]:
                    removed = min(int(flight[row, drop.node]), drop.count)
                    flight[row, drop.node] -= removed
                    self.events["det_dropped"] += removed

    def apply_np(
        self,
        np_mod: Any,
        round_index: int,
        cols: Any,
        cw_flight: Any,
        ccw_flight: Any,
        instance_offset: int,
        live: Any,
    ) -> Any:
        """Mutate columns/flights for one round start; returns extra sends
        (0, or int64 ``[B]`` when restart re-inits sent pulses).

        ``live`` freezes already-quiesced rows, matching the pure-Python
        per-instance loop exit (see :meth:`DirectionFaults.apply_np`)."""
        B, n = cw_flight.shape
        extra = None
        window = self._np_groups_begin(
            np_mod, round_index, cols, live, instance_offset, B
        )
        self._det_drops_np(
            np_mod, self.cw_drops, round_index, cw_flight, instance_offset, live
        )
        self._det_drops_np(
            np_mod, self.ccw_drops, round_index, ccw_flight, instance_offset, live
        )
        self._np_group_drops(
            np_mod, round_index, cw_flight, ccw_flight, live, instance_offset,
            B, n,
        )
        for crash in self.model.crashes:
            if crash.instance is None:
                rows: Any = live
                count = int(np_mod.sum(live))
            else:
                row = crash.instance - instance_offset
                if not (0 <= row < B and live[row]):
                    continue
                rows = row
                count = 1
            if count == 0:
                continue
            if crash.down(round_index):
                lost = cw_flight[rows, crash.node] + ccw_flight[rows, crash.node]
                self.events["crash_lost"] += int(np_mod.sum(lost))
                cw_flight[rows, crash.node] = 0
                ccw_flight[rows, crash.node] = 0
            elif crash.restarts_at(round_index):
                # Fresh-state reset (TerminatingColumns.fresh semantics for
                # one node) + the kernel init pulse on the CW channel.
                cols.rho_cw[rows, crash.node] = 0
                cols.rho_ccw[rows, crash.node] = 0
                cols.pend_cw[rows, crash.node] = 0
                cols.pend_ccw[rows, crash.node] = 0
                cols.sigma_cw[rows, crash.node] = 1
                cols.sigma_ccw[rows, crash.node] = 0
                cols.term_sent[rows, crash.node] = False
                cols.terminated[rows, crash.node] = False
                cols.out_leader[rows, crash.node] = False
                cw_flight[rows, (crash.node + 1) % n] += 1
                self.events["restarts"] += count
                if extra is None:
                    extra = np_mod.zeros(B, np_mod.int64)
                extra[rows] += 1
        self._np_crash_rate(
            np_mod, cw_flight, ccw_flight, live, instance_offset, B, n
        )
        extra = self._np_group_crashes(
            np_mod, round_index, cols, cw_flight, ccw_flight, live,
            instance_offset, B, n, extra,
        )
        _apply_random_np(
            np_mod, self.model, self.events, round_index, cw_flight,
            instance_offset, 0, live, window,
        )
        _apply_random_np(
            np_mod, self.model, self.events, round_index, ccw_flight,
            instance_offset, n, live, window,
        )
        for corruption in self.model.corruptions:
            if corruption.at_round != round_index:
                continue
            target = getattr(cols, _TERMINATING_COLS[corruption.field])
            if corruption.instance is None:
                target[live, corruption.node] = corruption.value
                self.events["corruptions"] += int(np_mod.sum(live))
            else:
                row = corruption.instance - instance_offset
                if 0 <= row < B and live[row]:
                    target[row, corruption.node] = corruption.value
                    self.events["corruptions"] += 1
        return 0 if extra is None else extra

    def apply_py(
        self,
        round_index: int,
        instance: int,
        ids: List[int],
        states: List[Any],
        out_leader: List[bool],
        cw_flight: List[int],
        ccw_flight: List[int],
        kernel: Any,
    ) -> int:
        """Scalar twin of :meth:`apply_np` for global ``instance``."""
        n = self.n
        extra = 0
        window = self._py_groups_begin(round_index, instance, states)
        for drops, flight in ((self.cw_drops, cw_flight), (self.ccw_drops, ccw_flight)):
            for drop in drops:
                if drop.round_index != round_index:
                    continue
                if drop.instance is None or drop.instance == instance:
                    removed = min(flight[drop.node], drop.count)
                    flight[drop.node] -= removed
                    self.events["det_dropped"] += removed
        self._py_group_drops(round_index, instance, cw_flight, ccw_flight)
        for crash in self.model.crashes:
            if crash.instance is not None and crash.instance != instance:
                continue
            if crash.down(round_index):
                self.events["crash_lost"] += (
                    cw_flight[crash.node] + ccw_flight[crash.node]
                )
                cw_flight[crash.node] = 0
                ccw_flight[crash.node] = 0
            elif crash.restarts_at(round_index):
                states[crash.node] = kernel.make_state(ids[crash.node])
                _, emissions, _ = kernel.init(states[crash.node])
                for _port, cnt in emissions:
                    # The terminating kernel's init emits on the CW send
                    # port only; route accordingly.
                    cw_flight[(crash.node + 1) % n] += cnt
                    extra += cnt
                out_leader[crash.node] = False
                self.events["restarts"] += 1
        self._py_crash_rate(instance, cw_flight, ccw_flight)
        extra += self._py_group_crashes(
            round_index, instance, ids, states, out_leader, cw_flight,
            ccw_flight, kernel,
        )
        _apply_random_py(
            self.model, self.events, round_index, cw_flight, instance, 0,
            window,
        )
        _apply_random_py(
            self.model, self.events, round_index, ccw_flight, instance, n,
            window,
        )
        for corruption in self.model.corruptions:
            if corruption.at_round != round_index:
                continue
            if corruption.instance is None or corruption.instance == instance:
                setattr(
                    states[corruption.node], corruption.field, corruption.value
                )
                self.events["corruptions"] += 1
        return extra
