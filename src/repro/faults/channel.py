"""Event-backend compiler: faulty channels for the Engine family.

Wraps :class:`~repro.simulator.channel.Channel` objects so every enqueue
consults the shared :class:`~repro.faults.model.FaultModel`.  The batched
engine already falls back to per-pulse delivery on any channel subclass,
so wrapping is the *only* integration point for both event backends.

Injected pulses are tagged in their ``send_seq`` (:data:`FAULT_TWIN_BIT`
for duplicates, :data:`FAULT_SPURIOUS_BIT` for spurious injections) so
traces, fingerprints, and the diagnosis layer can attribute which pulse
was the fault — the nodes never see sequence numbers, so the tag cannot
leak into algorithm behaviour.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.exceptions import ConfigurationError
from repro.faults.model import FaultModel
from repro.simulator.channel import Channel
from repro.simulator.network import Network

#: ``send_seq`` marker for an injected duplicate twin.  Engine sequence
#: numbers count real sends (well below 2**60), so the high bits are free.
FAULT_TWIN_BIT = 1 << 60
#: ``send_seq`` marker for a spurious (from-nowhere) pulse.
FAULT_SPURIOUS_BIT = 1 << 61


def is_fault_seq(send_seq: int) -> bool:
    """Whether a ``send_seq`` belongs to an injected (fault) pulse."""
    return bool(send_seq & (FAULT_TWIN_BIT | FAULT_SPURIOUS_BIT))


class FaultyChannel(Channel):
    """A channel that violates the model per a :class:`FaultModel`.

    Attributes:
        model: The shared declarative fault model.
        dropped: Number of messages silently destroyed so far.
        duplicated: Number of messages delivered twice so far.
        injected: Number of spurious pulses injected so far.
    """

    def __init__(self, base: Channel, model: FaultModel) -> None:
        super().__init__(
            channel_id=base.channel_id,
            src=base.src,
            dst=base.dst,
            defective=base.defective,
        )
        # Defense in depth for direct construction (apply_fault_model
        # rejects these too): round-indexed clauses — pulse drops, node
        # crashes, corruptions, correlated groups, crash_rate — have no
        # event-channel lowering; silently ignoring them would make the
        # engine disagree with the fleet on the same model.
        if model.fleet_only_clauses:
            raise ConfigurationError(
                f"fault clauses {'/'.join(model.fleet_only_clauses)} only "
                "compile onto the fleet engine; FaultyChannel supports the "
                "random drop/duplicate/spurious rates"
            )
        self.model = model
        self.dropped = 0
        self.duplicated = 0
        self.injected = 0
        self._send_index = 0

    @property
    def _plan(self) -> FaultModel:
        """Deprecated alias kept for the pre-unification attribute name."""
        return self.model

    def enqueue(self, send_seq: int, content: Any = None) -> None:
        index = self._send_index
        self._send_index += 1
        copies, spurious = self.model.send_outcome(self.channel_id, index)
        if copies == 0:
            self.dropped += 1  # the pulse evaporates: model violation #1
        else:
            super().enqueue(send_seq, content)
            if copies == 2:
                self.duplicated += 1  # injected twin: violation #2
                super().enqueue(send_seq | FAULT_TWIN_BIT, content)
        if spurious:
            self.injected += 1  # pulse from nowhere: violation #2, unprompted
            super().enqueue(send_seq | FAULT_SPURIOUS_BIT, None)


def apply_fault_model(network: Network, model: FaultModel) -> Network:
    """Replace every channel of ``network`` with a faulty twin, in place.

    Must be called before the engine run starts (queues must be empty).
    Returns the same network for chaining.  Fleet-only clauses (pulse
    drops by round, crashes, corruptions, correlated groups, crash_rate)
    have no event-channel lowering and are rejected — run those through
    the fleet engine.
    """
    if model.fleet_only_clauses:
        raise ConfigurationError(
            "fault clauses "
            f"{'/'.join(model.fleet_only_clauses)} are round-indexed and "
            "only compile onto the fleet engine; event-driven channels "
            "support the random drop/duplicate/spurious rates"
        )
    for channel in network.channels:
        if channel.pending:
            raise ConfigurationError(
                "fault plans must be applied before any message is sent"
            )
    network.channels = [
        FaultyChannel(channel, model) for channel in network.channels
    ]
    return network


def total_faults(network: Network) -> tuple:
    """(dropped, duplicated) across all channels of a faulted network."""
    counts = fault_counts(network)
    return counts["dropped"], counts["duplicated"]


def fault_counts(network: Network) -> Dict[str, int]:
    """All per-kind fault counters across a faulted network's channels."""
    dropped = duplicated = injected = 0
    for channel in network.channels:
        if isinstance(channel, FaultyChannel):
            dropped += channel.dropped
            duplicated += channel.duplicated
            injected += channel.injected
    return {"dropped": dropped, "duplicated": duplicated, "injected": injected}
