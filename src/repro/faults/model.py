"""The declarative fault language: one model, compiled onto every backend.

The paper's model (Section 2) is load-bearingly precise about what the
channel noise may *not* do: "pulses cannot be dropped or injected by the
channel."  This package deliberately violates those assumptions — as
*negative* experiments that show the assumptions are load-bearing, and as
the input language for the recovery harness and the graceful-degradation
sweeps.

A :class:`FaultModel` is a frozen, seedable description of every fault the
repo knows how to inject:

* **channel faults** — per-send drop / duplicate / spurious-injection
  probabilities, optionally gated to a bounded :class:`FaultBurst` window;
* **deterministic pulse drops** — :class:`PulseDrop` (the fleet's historical
  ``FleetFault``): remove up to ``count`` in-flight pulses at the start of
  a chosen round;
* **node crashes** — :class:`NodeCrash`: from ``at_round`` the node absorbs
  nothing (deliveries toward it evaporate); with ``restart_after`` it
  reboots into its kernel ``init`` state (crash-restart);
* **state corruption** — :class:`StateCorruption`: overwrite one integer
  state field (validated against the kernel ``SCHEMA``\\ s from
  :mod:`repro.core.schema`) at the start of a chosen round.

The model itself contains **no backend code**.  Each backend owns a thin
compiler:

* :mod:`repro.faults.channel` wraps event-driven
  :class:`~repro.simulator.channel.Channel` objects (Engine, batched
  engine fall back to per-pulse delivery on faulty channels);
* :mod:`repro.faults.profile` replays the same decisions as a pure
  function of ``(channel_id, send_index)`` for the schedule explorers;
* :mod:`repro.faults.fleet` lowers the model onto the fleet engine's
  struct-of-arrays round loop (NumPy and pure-Python columns,
  bit-identically).

Determinism everywhere comes from *counter-based* rolls: every decision is
``mix64`` of pure coordinates ``(seed, kind, instance, round, channel,
pulse)`` — no sequential RNG state — so any backend, any shard layout, and
any replay sees the same fault pattern.  This is the same construction as
the fleet's seeded scheduler (which now imports its mix from here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import ConfigurationError

_MASK64 = (1 << 64) - 1
_TWO64 = 1 << 64

# Odd 64-bit constants for the counter-based decision hash (golden-ratio
# and murmur3-finalizer family); any fixed odd constants would do.  The
# fleet's schedule hash shares these (single source, one stream family).
_KEY_INSTANCE = 0x9E3779B97F4A7C15
_KEY_ROUND = 0xC2B2AE3D27D4EB4F
_KEY_CHANNEL = 0xD6E8FEB86659FD93
_KEY_PULSE = 0x2545F4914F6CDD1D
_MIX_A = 0xFF51AFD7ED558CCD
_MIX_B = 0xC4CEB9FE1A85EC53

# Per-kind stream keys: each fault decision kind draws from a disjoint
# counter stream, so e.g. the drop and spurious rolls at one coordinate
# are independent.
KIND_SEND = 0xB5297A4D3A2F1C9B  # event-channel drop/duplicate roll
KIND_SPURIOUS = 0x7FEB352D8ED4AB63  # spurious-injection roll
KIND_DROP = 0x68E31DA4B1E8D94D  # fleet per-pulse drop roll
KIND_DUPLICATE = 0x1B56C4E9A02C4F8B  # fleet duplicate roll
KIND_CRASH = 0xA0761D6478BD642F  # probabilistic per-node crash roll


def mix64(x: int) -> int:
    """Murmur3 finalizer: a bijective 64-bit mix, pure-Python reference."""
    x &= _MASK64
    x = ((x ^ (x >> 33)) * _MIX_A) & _MASK64
    x = ((x ^ (x >> 33)) * _MIX_B) & _MASK64
    return x ^ (x >> 33)


def roll_u64(
    seed: int,
    kind: int,
    instance: int,
    round_index: int,
    channel: int,
    pulse: int = 0,
) -> int:
    """One 64-bit fault roll — a pure function of its coordinates.

    The NumPy twin in :mod:`repro.faults.fleet` replicates this exact
    add/multiply/mask order with uint64 wraparound arithmetic, so both
    fleet backends (and solo replays at any ``instance_offset``) derive
    identical decisions.
    """
    key = (
        mix64(seed)
        + kind
        + instance * _KEY_INSTANCE
        + round_index * _KEY_ROUND
        + channel * _KEY_CHANNEL
        + pulse * _KEY_PULSE
    ) & _MASK64
    return mix64(key)


def rate_threshold(rate: float) -> int:
    """A probability as a 64-bit integer threshold (``roll < threshold``).

    ``rate >= 1.0`` maps to ``2**64`` (always true) rather than the
    nearest representable uint64, so "certain" faults really are certain.
    """
    if rate >= 1.0:
        return _TWO64
    if rate <= 0.0:
        return 0
    return int(rate * _TWO64)


def _check_rate(name: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")


@dataclass(frozen=True)
class FaultBurst:
    """A bounded window of fault opportunities (1-based ordinals).

    Random channel faults only fire for send/round ordinals ``k`` with
    ``start <= k < start + length`` (``length=None`` means unbounded —
    the default behaviour of an ungated model).  Bursts model transient
    interference: the run is clean, takes a bounded beating, and the
    recovery harness asks whether it re-stabilizes.
    """

    start: int = 1
    length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start < 1:
            raise ConfigurationError(
                f"burst start is a 1-based ordinal; got {self.start}"
            )
        if self.length is not None and self.length < 1:
            raise ConfigurationError(
                f"burst length must be >= 1 (or None for unbounded); "
                f"got {self.length}"
            )

    def covers(self, ordinal: int) -> bool:
        """Whether fault opportunity ``ordinal`` (1-based) is in the burst."""
        if ordinal < self.start:
            return False
        return self.length is None or ordinal < self.start + self.length


@dataclass(frozen=True)
class PulseDrop:
    """One deterministic in-flight pulse loss (the fleet's ``FleetFault``).

    At the *start* of fleet round ``round_index`` (1-based, before
    deliveries), up to ``count`` pulses currently in flight toward
    ``node`` in ``direction`` are removed — in ``instance`` only, or in
    every instance when ``instance`` is None.  Pulse loss is outside the
    paper's model (FIFO channels never drop), so a fault must surface as
    invariant violations downstream; the statistical checker injects one
    to prove it would catch a buggy kernel.
    """

    round_index: int
    node: int
    direction: str = "cw"
    instance: Optional[int] = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.direction not in ("cw", "ccw"):
            raise ConfigurationError(
                f"fault direction must be 'cw' or 'ccw', got {self.direction!r}"
            )
        if self.round_index < 1 or self.count < 1:
            raise ConfigurationError(
                "fault round_index and count must be >= 1; "
                f"got round_index={self.round_index}, count={self.count}"
            )


#: Historical name (the fleet engine's original ad-hoc fault type);
#: :class:`PulseDrop` is the canonical spelling in the unified language.
FleetFault = PulseDrop


@dataclass(frozen=True)
class NodeCrash:
    """A node crash, optionally followed by a restart into ``init`` state.

    From the start of round ``at_round`` the node processes nothing:
    deliveries toward it evaporate and its state freezes.  With
    ``restart_after = r`` it reboots at the start of round
    ``at_round + r`` — state reset by the kernel's ``make_state`` +
    ``init`` (fresh counters, the initial pulse re-sent) — which is the
    self-stabilization question: does the ring reconverge around a
    rebooted participant?  ``restart_after=None`` is a permanent crash.
    """

    node: int
    at_round: int
    restart_after: Optional[int] = None
    instance: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(f"crash node must be >= 0, got {self.node}")
        if self.at_round < 1:
            raise ConfigurationError(
                f"crash at_round is 1-based; got {self.at_round}"
            )
        if self.restart_after is not None and self.restart_after < 1:
            raise ConfigurationError(
                f"restart_after must be >= 1 (or None); got {self.restart_after}"
            )

    def down(self, round_index: int) -> bool:
        """Whether the node is down at the start of ``round_index``."""
        if round_index < self.at_round:
            return False
        return (
            self.restart_after is None
            or round_index < self.at_round + self.restart_after
        )

    def restarts_at(self, round_index: int) -> bool:
        """Whether the node reboots at the start of ``round_index``."""
        return (
            self.restart_after is not None
            and round_index == self.at_round + self.restart_after
        )


@dataclass(frozen=True)
class StateCorruption:
    """Transient corruption of one integer kernel-state field.

    At the start of round ``at_round``, field ``field`` of ``node`` is
    overwritten with ``value``.  Field names are the *fleet-materialized*
    directional columns of the kernel ``SCHEMA``\\ s (see
    :func:`corruptible_fields`); compilation validates the name against
    the target algorithm and rejects config fields — corrupting an ID is
    a different instance, not a fault.
    """

    node: int
    at_round: int
    field: str = "rho_cw"
    value: int = 0
    instance: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(
                f"corruption node must be >= 0, got {self.node}"
            )
        if self.at_round < 1:
            raise ConfigurationError(
                f"corruption at_round is 1-based; got {self.at_round}"
            )
        if self.value < 0:
            raise ConfigurationError(
                f"corrupted counter values must be >= 0, got {self.value}"
            )


def corruptible_fields(algorithm: str) -> Tuple[str, ...]:
    """Schema-validated corruption targets for ``algorithm``'s kernel.

    These are the int-kind, non-config fields of the kernel's declared
    ``SCHEMA``, spelled as the directional columns the fleet actually
    materializes (the nonoriented kernel's ``rho``/``sigma`` pairs lower
    to ``rho_cw``/``rho_ccw`` etc.; warmup's identically-zero CCW fields
    are excluded because Algorithm 1 never touches them).
    """
    from repro.core import schema as core_schema
    from repro.core.kernels import nonoriented, terminating, warmup

    try:
        kernel_schema, materialized = {
            "warmup": (warmup.SCHEMA, ("rho_cw", "sigma_cw")),
            "terminating": (
                terminating.SCHEMA,
                (
                    "rho_cw",
                    "sigma_cw",
                    "rho_ccw",
                    "sigma_ccw",
                    "pending_cw",
                    "pending_ccw",
                ),
            ),
            "nonoriented": (
                nonoriented.SCHEMA,
                ("rho_cw", "sigma_cw", "rho_ccw", "sigma_ccw"),
            ),
        }[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"no kernel schema for algorithm {algorithm!r}; choose "
            "'warmup', 'terminating', or 'nonoriented'"
        ) from None
    # Sanity: every materialized column must trace back to a declared
    # non-config int-like schema field (directional names map onto the
    # nonoriented kernel's int_list pairs by dropping the suffix).
    declared = {
        f.name
        for f in kernel_schema.fields
        if f.role != core_schema.CONFIG and f.kind in ("int", "int_list")
    }
    for name in materialized:
        root = name.rsplit("_", 1)[0]
        if name not in declared and root not in declared:
            raise ConfigurationError(
                f"schema drift: {name!r} not declared by {kernel_schema.name}"
            )
    return materialized


@dataclass(frozen=True)
class GroupDrop:
    """One timed pulse deletion *relative to its group* (anchor + trigger).

    Fires at the start of round ``fire + offset`` (``fire`` is the round
    the owning :class:`FaultGroup` triggered; ``offset=0`` is the fire
    round itself) and removes up to ``count`` pulses in flight toward
    node ``(anchor + node_offset) mod n`` in ``direction``.  Standalone
    :class:`PulseDrop` clauses stay absolute; relative drops are what let
    an adversary time interference to a trigger it cannot observe the
    content of.
    """

    offset: int = 0
    node_offset: int = 0
    direction: str = "cw"
    count: int = 1

    def __post_init__(self) -> None:
        if self.direction not in ("cw", "ccw"):
            raise ConfigurationError(
                f"group drop direction must be 'cw' or 'ccw', "
                f"got {self.direction!r}"
            )
        if self.offset < 0:
            raise ConfigurationError(
                f"group drop offset is relative to the fire round and must "
                f"be >= 0; got {self.offset}"
            )
        if self.count < 1:
            raise ConfigurationError(
                f"group drop count must be >= 1; got {self.count}"
            )


#: Threshold triggers read the directional governing counters every
#: fleet lowering materializes: ``rho`` (absorbed-run counter) or
#: ``sigma`` (sent counter) of the anchor node, in the run's primary
#: direction (each directional half of Algorithm 3 evaluates its own).
GROUP_TRIGGER_FIELDS = ("rho", "sigma")


@dataclass(frozen=True)
class FaultGroup:
    """Correlated clauses bound to one anchor node and one shared trigger.

    Independent clause draws measure average-case noise; real
    content-oblivious adversaries *correlate* — a crash plus a burst of
    drops at one node, timed to a counter threshold crossing.  A group
    binds its member clauses to:

    * an **anchor** — the ring position every member is relative to;
    * a **trigger** — either an absolute round (``at_round``) or the
      first round at which the anchor's ``trigger_field`` counter
      reaches ``trigger_threshold`` (a *threshold-crossing* trigger:
      the fire round then differs per instance, following each
      instance's own trajectory).

    Members (at least one is required):

    * ``crash=True`` — the anchor crashes at the fire round; with
      ``restart_after=r`` it reboots ``r`` rounds later (kernel
      fresh-state + init, exactly :class:`NodeCrash` semantics);
    * ``drops`` — :class:`GroupDrop` deletions at rounds/nodes relative
      to the fire round and anchor;
    * ``burst`` — re-anchors the model's random channel rates to the
      fire round: rates fire only for rounds whose *relative* ordinal
      ``round - fire + 1`` the burst covers.  A model carrying any
      group burst must leave its own top-level ``burst`` unset (the
      groups take over the gating).

    Groups are fleet-only (like crashes) and disable lap-skips: a skip
    compresses rounds in closed form without visiting the
    threshold-crossing round, which would change trigger timing.
    """

    anchor: int
    at_round: Optional[int] = None
    trigger_field: Optional[str] = None
    trigger_threshold: Optional[int] = None
    crash: bool = False
    restart_after: Optional[int] = None
    drops: Tuple[GroupDrop, ...] = ()
    burst: Optional[FaultBurst] = None
    instance: Optional[int] = None

    def __post_init__(self) -> None:
        if self.anchor < 0:
            raise ConfigurationError(
                f"group anchor must be >= 0, got {self.anchor}"
            )
        absolute = self.at_round is not None
        thresholded = self.trigger_field is not None
        if absolute == thresholded:
            raise ConfigurationError(
                "a fault group needs exactly one trigger: either at_round "
                "or (trigger_field, trigger_threshold)"
            )
        if absolute and self.at_round < 1:
            raise ConfigurationError(
                f"group at_round is 1-based; got {self.at_round}"
            )
        if thresholded:
            if self.trigger_field not in GROUP_TRIGGER_FIELDS:
                raise ConfigurationError(
                    f"group trigger_field must be one of "
                    f"{list(GROUP_TRIGGER_FIELDS)}, got {self.trigger_field!r}"
                )
            if self.trigger_threshold is None or self.trigger_threshold < 1:
                raise ConfigurationError(
                    "a threshold trigger needs trigger_threshold >= 1; "
                    f"got {self.trigger_threshold}"
                )
        elif self.trigger_threshold is not None:
            raise ConfigurationError(
                "trigger_threshold without trigger_field: pick one trigger"
            )
        if self.restart_after is not None:
            if not self.crash:
                raise ConfigurationError(
                    "restart_after without crash=True: nothing to restart"
                )
            if self.restart_after < 1:
                raise ConfigurationError(
                    f"restart_after must be >= 1 (or None); "
                    f"got {self.restart_after}"
                )
        object.__setattr__(self, "drops", tuple(self.drops))
        if not (self.crash or self.drops or self.burst is not None):
            raise ConfigurationError(
                "a fault group needs at least one member clause "
                "(crash, drops, or burst)"
            )

    # -- fire-round helpers shared by the np/py twin compilers -----------

    def down(self, round_index: int, fire: int) -> bool:
        """Crash-down predicate given the group's fire round."""
        if not self.crash or round_index < fire:
            return False
        return (
            self.restart_after is None
            or round_index < fire + self.restart_after
        )

    def restarts_at(self, round_index: int, fire: int) -> bool:
        """Crash-restart predicate given the group's fire round."""
        return (
            self.crash
            and self.restart_after is not None
            and round_index == fire + self.restart_after
        )

    def burst_active(self, round_index: int, fire: int) -> bool:
        """Whether this group's burst window covers ``round_index``."""
        if self.burst is None or round_index < fire:
            return False
        return self.burst.covers(round_index - fire + 1)


@dataclass(frozen=True)
class FaultModel:
    """One declarative fault description, compiled onto every backend.

    Attributes:
        drop_rate: Per-send probability a pulse evaporates.
        duplicate_rate: Per-send probability an extra twin is injected
            (drop wins when both would fire, as the original
            ``FaultPlan`` defined).
        spurious_rate: Per-opportunity probability a pulse appears out of
            nowhere (event channels roll per send; the fleet rolls per
            channel per round — the same declarative rate, lowered to
            each backend's notion of a fault opportunity).
        seed: Stream seed for every random roll.
        burst: Optional bounded window gating the random rates.
        drops: Deterministic :class:`PulseDrop` clauses (fleet only).
        crashes: :class:`NodeCrash` clauses (fleet only).
        corruptions: :class:`StateCorruption` clauses (fleet only).
        crash_rate: Per-(instance, node) probability the node is dead
            from round 1 (fail-stop at start; one counter roll per
            coordinate, fleet only) — the degradation sweeps' ``crash``
            kind.
        groups: Correlated :class:`FaultGroup` clauses (fleet only).

    The all-zero model is **valid** and means "no faults" — programmatic
    call sites (sweeps, CLI plumbing) branch on :attr:`is_noop` instead
    of being forced to pass ``None`` around.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    spurious_rate: float = 0.0
    seed: int = 0
    burst: Optional[FaultBurst] = None
    drops: Tuple[PulseDrop, ...] = ()
    crashes: Tuple[NodeCrash, ...] = ()
    corruptions: Tuple[StateCorruption, ...] = ()
    crash_rate: float = 0.0
    groups: Tuple[FaultGroup, ...] = ()

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("duplicate_rate", self.duplicate_rate)
        _check_rate("spurious_rate", self.spurious_rate)
        _check_rate("crash_rate", self.crash_rate)
        if self.drop_rate + self.duplicate_rate > 1.0:
            raise ConfigurationError(
                "drop_rate + duplicate_rate cannot exceed 1 "
                f"(one roll decides both); got "
                f"{self.drop_rate} + {self.duplicate_rate}"
            )
        # Accept tuples or any sequence; store tuples (frozen dataclass).
        object.__setattr__(self, "drops", tuple(self.drops))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "corruptions", tuple(self.corruptions))
        object.__setattr__(self, "groups", tuple(self.groups))
        if self.burst is not None and any(
            g.burst is not None for g in self.groups
        ):
            raise ConfigurationError(
                "group bursts re-anchor the random-rate gating to their "
                "fire rounds; a model carrying one must leave its "
                "top-level burst unset"
            )

    @classmethod
    def none(cls) -> "FaultModel":
        """The explicit no-op model (valid, injects nothing)."""
        return cls()

    @property
    def is_noop(self) -> bool:
        """True when this model injects nothing at all."""
        return not (
            self.drop_rate
            or self.duplicate_rate
            or self.spurious_rate
            or self.drops
            or self.crashes
            or self.corruptions
            or self.crash_rate
            or self.groups
        )

    @property
    def has_channel_rates(self) -> bool:
        """True when any random channel-fault rate is nonzero."""
        return bool(self.drop_rate or self.duplicate_rate or self.spurious_rate)

    @property
    def has_group_bursts(self) -> bool:
        """True when any group re-anchors the random-rate gating."""
        return any(g.burst is not None for g in self.groups)

    @property
    def fleet_only_clauses(self) -> Tuple[str, ...]:
        """Clause kinds the event-driven channels cannot express."""
        kinds = []
        if self.drops:
            kinds.append("drops")
        if self.crashes:
            kinds.append("crashes")
        if self.corruptions:
            kinds.append("corruptions")
        if self.crash_rate:
            kinds.append("crash_rate")
        if self.groups:
            kinds.append("groups")
        return tuple(kinds)

    def covers(self, ordinal: int) -> bool:
        """Whether random faults may fire at opportunity ``ordinal``."""
        return self.burst is None or self.burst.covers(ordinal)

    # -- channel-backend decisions (one roll per send, drop wins) --------

    def send_outcome(self, channel_id: int, index: int) -> Tuple[int, bool]:
        """Fate of the ``index``-th send on ``channel_id`` (0-based).

        Returns ``(copies, spurious)`` where ``copies`` is how many
        copies of the sent pulse enter the queue (0 dropped, 1 clean,
        2 duplicated) and ``spurious`` whether an extra pulse from
        nowhere rides along.  Pure in its arguments — the explorers'
        :class:`~repro.faults.profile.ReplayProfile` calls this from any
        branch order and sees the live channel's exact pattern.
        """
        copies = 1
        spurious = False
        if not self.covers(index + 1):
            return copies, spurious
        t_drop = rate_threshold(self.drop_rate)
        t_dup = rate_threshold(self.drop_rate + self.duplicate_rate)
        if t_dup:
            roll = roll_u64(self.seed, KIND_SEND, 0, 0, channel_id, index)
            if roll < t_drop:
                copies = 0
            elif roll < t_dup:
                copies = 2
        if self.spurious_rate > 0.0:
            roll = roll_u64(self.seed, KIND_SPURIOUS, 0, 0, channel_id, index)
            spurious = roll < rate_threshold(self.spurious_rate)
        return copies, spurious

    def pulse_copies(self, channel_id: int, index: int) -> int:
        """Total pulses the ``index``-th send contributes (incl. spurious)."""
        copies, spurious = self.send_outcome(channel_id, index)
        return copies + (1 if spurious else 0)

    # -- legacy FaultPlan construction surface ---------------------------

    @classmethod
    def from_plan(
        cls, drop_rate: float = 0.0, duplicate_rate: float = 0.0, seed: int = 0
    ) -> "FaultModel":
        """Channel-rates-only model (the historical ``FaultPlan`` shape)."""
        return cls(drop_rate=drop_rate, duplicate_rate=duplicate_rate, seed=seed)
