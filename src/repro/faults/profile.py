"""Explorer-backend compiler: deterministic replay of channel faults.

The schedule explorers branch over delivery orders, re-simulating sends
in arbitrary branch orders — they cannot consume a live channel's fault
counters.  Because every :class:`~repro.faults.model.FaultModel` decision
is already a pure function of ``(channel_id, send_index)``, replay is
just calling the model again: no cached RNG streams, no shared mutable
state (the pre-unification ``FaultProfile`` lazily extended per-channel
``random.Random`` streams; counter-based rolls made that machinery
disappear).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.channel import FaultyChannel
from repro.faults.model import FaultModel
from repro.simulator.network import Network


class ReplayProfile:
    """Pure-function replay of a faulted network's per-send decisions.

    ``copies(channel_id, index)`` answers how many pulses the ``index``-th
    send on ``channel_id`` contributes to the queue: 0 (dropped), 1
    (clean), 2 (duplicated) — plus 1 more when a spurious pulse rides
    along.  The answer matches :class:`~repro.faults.channel.FaultyChannel`
    exactly, in any branch order.
    """

    def __init__(self, network: Network) -> None:
        self._models: Dict[int, FaultModel] = {}
        for channel in network.channels:
            if isinstance(channel, FaultyChannel) and channel.model.has_channel_rates:
                # FaultyChannel construction already rejects fleet-only
                # clauses (groups, crash_rate, round-indexed drops), so
                # every model here is replayable as a pure function of
                # (channel_id, send_index).
                assert not channel.model.fleet_only_clauses
                self._models[channel.channel_id] = channel.model

    def __bool__(self) -> bool:
        return bool(self._models)

    def is_faulty(self, channel_id: int) -> bool:
        return channel_id in self._models

    def copies(self, channel_id: int, index: int) -> int:
        model = self._models.get(channel_id)
        if model is None:
            return 1
        return model.pulse_copies(channel_id, index)

    # The profile is immutable; deep-copying an explorer state must not
    # fork it.
    def __deepcopy__(self, memo: dict) -> "ReplayProfile":
        return self


#: Historical name from ``repro.verification.common``.
FaultProfile = ReplayProfile


def build_fault_profile(network: Network) -> Optional[ReplayProfile]:
    """A :class:`ReplayProfile` for ``network``, or None when unfaulted."""
    profile = ReplayProfile(network)
    return profile if profile else None
