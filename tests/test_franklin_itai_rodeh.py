"""Franklin 1982 and Itai-Rodeh: the remaining related-work baselines.

Franklin: bidirectional O(n log n), elects the maximum ID.
Itai-Rodeh: anonymous + randomized + ring size known => *terminating*
election — the exact positive counterpart of the impossibility that
forces the paper's Theorem 3 to settle for stabilization.
"""

import math
import random

import pytest

from repro.baselines import run_baseline
from repro.baselines.franklin import FranklinNode
from repro.baselines.itai_rodeh import run_itai_rodeh
from repro.core.common import LeaderState
from repro.exceptions import ConfigurationError
from tests.conftest import SCHEDULER_FACTORIES


class TestFranklin:
    @pytest.mark.parametrize(
        "ids", [[5], [1, 2], [2, 1], [3, 1, 4], [7, 9, 8, 2, 6], [4, 11, 6, 2, 9, 1]]
    )
    def test_elects_maximum(self, ids):
        outcome = run_baseline(FranklinNode, ids)
        assert outcome.leaders == [ids.index(max(ids))]
        assert len(set(outcome.agreed_leader_ids)) == 1

    def test_across_schedulers(self):
        ids = [4, 11, 6, 2, 9, 1]
        for factory in SCHEDULER_FACTORIES.values():
            outcome = run_baseline(FranklinNode, ids, scheduler=factory())
            assert outcome.leaders == [1]

    @pytest.mark.parametrize("n", [4, 8, 16, 32, 64])
    def test_n_log_n_ceiling(self, n):
        ids = random.Random(n).sample(range(1, 10 * n), n)
        outcome = run_baseline(FranklinNode, ids)
        phases = math.ceil(math.log2(n)) + 1 if n > 1 else 1
        # 2n per phase + n announcement + straggler slack.
        assert outcome.total_messages <= 2 * n * phases + 3 * n

    def test_survivors_are_local_maxima(self):
        # With ids alternating high/low, half the nodes fall each phase.
        ids = [10, 1, 20, 2, 30, 3, 40, 4]
        outcome = run_baseline(FranklinNode, ids)
        assert outcome.leaders == [6]  # id 40

    def test_random_sweep(self):
        rng = random.Random(77)
        for _ in range(30):
            n = rng.randint(1, 20)
            ids = rng.sample(range(1, 500), n)
            outcome = run_baseline(FranklinNode, ids)
            assert outcome.leaders == [ids.index(max(ids))], ids


class TestItaiRodeh:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_terminating_anonymous_election(self, n, seed):
        outcome = run_itai_rodeh(n, seed=seed)
        assert len(outcome.leaders) == 1
        assert outcome.run.all_terminated
        assert outcome.run.quiescent

    def test_all_followers_output_non_leader(self):
        outcome = run_itai_rodeh(6, seed=5)
        (leader,) = outcome.leaders
        for index, node in enumerate(outcome.nodes):
            expected = (
                LeaderState.LEADER if index == leader else LeaderState.NON_LEADER
            )
            assert node.output is expected

    def test_across_schedulers(self):
        for name, factory in SCHEDULER_FACTORIES.items():
            outcome = run_itai_rodeh(5, seed=11, scheduler=factory())
            assert len(outcome.leaders) == 1, name
            assert outcome.run.all_terminated, name

    def test_rounds_are_typically_few(self):
        # Expected rounds ~ 1/(1 - 1/k)-ish; with k=8 the vast majority
        # of elections finish in <= 3 rounds.
        quick = sum(
            1 for seed in range(60) if run_itai_rodeh(6, seed=seed).rounds_used <= 3
        )
        assert quick / 60 > 0.8

    def test_tiny_id_space_forces_extra_rounds_sometimes(self):
        rounds = [run_itai_rodeh(4, seed=seed, id_space=2).rounds_used
                  for seed in range(40)]
        assert max(rounds) > 1  # collisions at k=2 are common

    def test_message_cost_scales_with_rounds(self):
        # Each round costs O(n^2) in the worst case (n candidate
        # messages x n hops) plus the announcement.
        outcome = run_itai_rodeh(6, seed=3)
        assert outcome.total_messages <= outcome.rounds_used * 6 * 6 + 2 * 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_itai_rodeh(0)
        with pytest.raises(ConfigurationError):
            run_itai_rodeh(3, id_space=1)

    def test_contrast_with_theorem3(self):
        # The whole point: same anonymity, but content + known n buy a
        # *terminating* election, which Theorem 3 provably cannot have.
        from repro.core.anonymous import run_anonymous

        itai = run_itai_rodeh(6, seed=2)
        anonymous = run_anonymous(6, c=1.0, seed=2)
        assert itai.run.all_terminated
        assert not any(anonymous.election.run.terminated)
