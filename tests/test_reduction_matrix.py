"""Four-way differential matrix over the reduction stack.

Every reduction layer (ample, sleep, symmetry, full) must produce the
unreduced explorer's verdicts on the small-instance grid — terminal
states, confluence, message counts, violation existence.  On top of the
equality matrix this file pins the acceptance criteria of the reduction
stack itself: the ``full`` mode's orbit-adjusted state reduction is at
least the ring size ``n`` on the Algorithm 2/3 instances, frontier
instances beyond the unreduced budget still certify, the visited store
spills to disk without changing verdicts, and unsound combinations
(symmetry under faults) are refused loudly.
"""

from __future__ import annotations

import pytest

from repro.core.invariants import ALGORITHM2_HOOKS
from repro.core.nonoriented import NonOrientedNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.exceptions import ConfigurationError
from repro.simulator.faults import FaultPlan, apply_fault_plan
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.verification import (
    REDUCTION_MODES,
    ExplorationLimitExceeded,
    explore_all_schedules,
    explore_reduced,
)


def oriented_factory(node_cls, ids, **kwargs):
    def build():
        return build_oriented_ring([node_cls(i, **kwargs) for i in ids]).network

    return build


def nonoriented_factory(ids, flips):
    def build():
        return build_nonoriented_ring(
            [NonOrientedNode(i) for i in ids], flips=flips
        ).network

    return build


#: The small-instance grid: (label, factory, include_duals).  Sizes are
#: chosen so the *unreduced* search finishes in well under a second each.
GRID = [
    ("warmup-4", oriented_factory(WarmupNode, [2, 3, 1, 4]), False),
    ("warmup-dup", oriented_factory(WarmupNode, [1, 2, 1, 2]), False),
    ("terminating-3", oriented_factory(TerminatingNode, [2, 3, 1]), False),
    ("nonoriented-3", nonoriented_factory([1, 2, 3], [False, True, False]), True),
]


def assert_matches_unreduced(full, reduced):
    """One reduction's certificate must agree with the reference search."""
    assert set(full.terminal_node_fingerprints) == set(
        reduced.terminal_node_fingerprints
    )
    assert full.confluent == reduced.confluent
    assert sorted(full.terminal_total_sent) == sorted(reduced.terminal_total_sent)
    assert (full.quiescence_violations == 0) == (
        reduced.quiescence_violations == 0
    )
    assert reduced.states_explored <= full.states_explored


@pytest.mark.parametrize(
    "label,factory,duals", GRID, ids=[row[0] for row in GRID]
)
@pytest.mark.parametrize("reduction", REDUCTION_MODES)
def test_four_way_verdict_equality(label, factory, duals, reduction):
    full = explore_all_schedules(factory)
    reduced = explore_reduced(
        factory, reduction=reduction, include_duals=duals
    )
    assert_matches_unreduced(full, reduced)
    assert reduced.reduction == reduction
    if reduction in ("symmetry", "full"):
        assert reduced.orbit_factor >= 1
        assert reduced.instances_certified == reduced.orbit_factor
        assert len(reduced.canonical_terminal_fingerprints) == len(
            reduced.terminal_node_fingerprints
        )
    else:
        assert reduced.orbit_factor == 1
        assert not reduced.canonical_terminal_fingerprints
    assert reduced.visited_bytes > 0
    assert not reduced.spilled


def test_sleep_layer_only_ever_prunes_states():
    """Sleep mode visits a subset of the ample search's states.

    (Transitions are *not* monotone: the state-matching variant may
    re-execute an edge when it re-reaches a state with a smaller sleep
    set — it trades a few repeated deliveries for never exploring a
    covered interleaving's subtree.)
    """
    skipped_anywhere = 0
    for _label, factory, _duals in GRID:
        ample = explore_reduced(factory, reduction="ample")
        sleep = explore_reduced(factory, reduction="sleep")
        assert sleep.states_explored <= ample.states_explored
        skipped_anywhere += sleep.sleep_skipped
    assert skipped_anywhere > 0


@pytest.mark.parametrize(
    "factory,n",
    [
        (oriented_factory(TerminatingNode, [2, 3, 1]), 3),
        (oriented_factory(TerminatingNode, [2, 3, 1, 4]), 4),
        (nonoriented_factory([1, 2, 3], [False, True, False]), 3),
    ],
    ids=["terminating-3", "terminating-4", "nonoriented-3"],
)
def test_full_reduction_beats_ring_size(factory, n):
    """Acceptance gate: orbit-adjusted reduction ≥ n on Algorithms 2/3."""
    full = explore_all_schedules(factory)
    reduced = explore_reduced(factory, reduction="full", include_duals=(n == 3))
    ratio = reduced.state_reduction_vs(full.states_explored)
    assert ratio >= n, f"reduction {ratio:.2f}x below ring size {n}"


def test_terminating_frontier_beyond_unreduced_budget():
    """Algorithm 2 frontier: unreduced blows a 4000-state budget, full fits."""
    ids = [1, 2, 3, 4, 5, 6]
    budget = 4_000
    factory = oriented_factory(TerminatingNode, ids)
    with pytest.raises(ExplorationLimitExceeded):
        explore_all_schedules(factory, max_states=budget)
    reduced = explore_reduced(factory, max_states=budget, reduction="full")
    assert reduced.confluent and reduced.quiescence_violations == 0
    assert reduced.terminal_total_sent == [len(ids) * (2 * max(ids) + 1)]
    assert reduced.orbit_factor == len(ids)


def test_nonoriented_frontier_beyond_unreduced_budget():
    """Algorithm 3 frontier: duals double the orbit, full fits the budget."""
    ids = [1, 2, 3, 4]
    flips = [False, True, False, False]
    budget = 4_000
    factory = nonoriented_factory(ids, flips)
    with pytest.raises(ExplorationLimitExceeded):
        explore_all_schedules(factory, max_states=budget)
    reduced = explore_reduced(
        factory, max_states=budget, reduction="full", include_duals=True
    )
    assert reduced.confluent and reduced.quiescence_violations == 0
    assert reduced.orbit_factor == 2 * len(ids)


# -- composition with faults --------------------------------------------------


def test_symmetry_under_faults_is_refused():
    plan = FaultPlan(drop_rate=0.3, duplicate_rate=0.0, seed=7)

    def factory():
        network = build_oriented_ring([WarmupNode(i) for i in (1, 2, 3)]).network
        apply_fault_plan(network, plan)
        return network

    for reduction in ("symmetry", "full"):
        with pytest.raises(ConfigurationError, match="fault"):
            explore_reduced(factory, reduction=reduction)


def test_sleep_under_faults_matches_unreduced():
    plan = FaultPlan(drop_rate=0.2, duplicate_rate=0.2, seed=11)

    def factory():
        network = build_oriented_ring([WarmupNode(i) for i in (1, 2, 3)]).network
        apply_fault_plan(network, plan)
        return network

    full = explore_all_schedules(factory)
    reduced = explore_reduced(factory, reduction="sleep")
    assert_matches_unreduced(full, reduced)


def test_unknown_reduction_mode_is_refused():
    with pytest.raises(ConfigurationError, match="unknown reduction"):
        explore_reduced(
            oriented_factory(WarmupNode, [1, 2]), reduction="turbo"
        )


# -- visited-store spilling ---------------------------------------------------


@pytest.mark.parametrize("reduction", ["ample", "full"])
def test_disk_spilled_visited_set_preserves_verdicts(tmp_path, reduction):
    factory = oriented_factory(TerminatingNode, [2, 3, 1])
    in_memory = explore_reduced(factory, reduction=reduction)
    spilled = explore_reduced(
        factory,
        reduction=reduction,
        spill_dir=str(tmp_path),
        spill_threshold=1,  # force an immediate spill
    )
    assert spilled.spilled and not in_memory.spilled
    assert spilled.states_explored == in_memory.states_explored
    assert spilled.transitions == in_memory.transitions
    assert set(spilled.terminal_node_fingerprints) == set(
        in_memory.terminal_node_fingerprints
    )
    assert spilled.terminal_total_sent == in_memory.terminal_total_sent
    assert spilled.visited_bytes >= in_memory.visited_bytes


# -- orbit spot-checks --------------------------------------------------------


def test_spot_checks_run_under_symmetry_only():
    factory = oriented_factory(TerminatingNode, [2, 3, 1])
    with_sym = explore_reduced(
        factory, invariant_hooks=ALGORITHM2_HOOKS, reduction="full"
    )
    without_sym = explore_reduced(
        factory, invariant_hooks=ALGORITHM2_HOOKS, reduction="sleep"
    )
    assert with_sym.spot_checks == with_sym.states_explored
    assert without_sym.spot_checks == 0


def test_duplicate_id_instances_reduce_soundly():
    # [2,2] is rotation-invariant: nothing to certify beyond itself.
    result = explore_reduced(
        oriented_factory(WarmupNode, [2, 2]), reduction="full"
    )
    assert result.orbit_factor == 1
    # [1,2,1,2] has a stabilizer of order 2: ambiguity handling engages.
    factory = oriented_factory(WarmupNode, [1, 2, 1, 2])
    full = explore_all_schedules(factory)
    reduced = explore_reduced(factory, reduction="full")
    assert_matches_unreduced(full, reduced)
    assert reduced.orbit_factor == 2


def test_summary_keys_are_stable():
    result = explore_reduced(
        oriented_factory(WarmupNode, [2, 3, 1]), reduction="full"
    )
    summary = result.summary()
    for key in (
        "reduction",
        "states",
        "transitions",
        "branch_reduction",
        "sleep_skipped",
        "orbit_factor",
        "instances_certified",
        "spot_checks",
        "visited_bytes",
        "spilled",
        "confluent",
    ):
        assert key in summary
    assert summary["reduction"] == "full"
    assert summary["states"] == result.states_explored
