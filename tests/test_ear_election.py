"""The 2-edge-connected election: engine, fleet, verification, refusal.

The ear-walk election (the Chang–Chen–Zhou lift of Algorithm 1) must:
elect exactly the maximum-ID vertex on every 2-edge-connected graph,
spend exactly ``L * IDmax * C`` pulses (the Corollary 13 bound on the
virtual ring), degenerate to Algorithm 1 on rings (stride 1, virtual
IDs == physical IDs), agree between the scalar engine and the fleet
backends, and *refuse* graphs below the frontier with the bridge edge
as an impossibility witness.
"""

import pytest
from hypothesis import given, settings

from repro.core.common import LeaderState
from repro.core.ear_election import elect_leader_ear, run_ear_election
from repro.core.kernels.ear import build_routing, pulse_bound, virtual_ids
from repro.exceptions import BridgeWitnessError, ConfigurationError
from repro.graphs.connectivity import Graph
from repro.graphs.samples import (
    bridge_graph,
    nested_ears,
    random_ear_composition,
    theta_graph,
)

from .strategies import two_edge_connected_graphs


def _ids_for(n, seed=0):
    """Deterministic unique positive IDs with a non-trivial argmax."""
    import random

    ids = list(range(2, 2 * n + 2, 2))
    random.Random(seed * 1000 + n).shuffle(ids)
    return ids


class TestEarRouting:
    @given(graph=two_edge_connected_graphs())
    @settings(deadline=None, max_examples=40)
    def test_walk_round_trips_the_decomposition(self, graph):
        """The ear walk is a closed walk using each directed edge at most
        once, visiting every vertex, whose per-vertex occurrence lists
        tile the walk exactly."""
        routing = build_routing(graph)
        walk = routing.walk
        assert routing.length == len(walk)
        assert set(walk) == set(range(graph.n))
        directed = list(zip(walk, walk[1:] + (walk[0],)))
        assert len(set(directed)) == len(directed)  # each directed edge once
        for src, dst in directed:
            assert (min(src, dst), max(src, dst)) in graph.edges
        positions = sorted(
            pos for occs in routing.occurrences for pos in occs
        )
        assert positions == list(range(routing.length))
        assert routing.stride == max(
            len(occs) for occs in routing.occurrences
        )

    @given(graph=two_edge_connected_graphs())
    @settings(deadline=None, max_examples=40)
    def test_virtual_ids_unique_max_at_argmax_vertex(self, graph):
        ids = _ids_for(graph.n)
        routing = build_routing(graph)
        vids = virtual_ids(ids, routing)
        assert len(vids) == routing.length
        assert len(set(vids)) == routing.length  # all distinct
        best = max(range(len(vids)), key=lambda j: vids[j])
        argmax_vertex = max(range(graph.n), key=lambda v: ids[v])
        assert routing.walk[best] == argmax_vertex
        assert best == routing.occurrences[argmax_vertex][0]

    def test_ring_is_algorithm_one(self):
        """On a ring the walk is the ring: stride 1, vids == ids."""
        ids = [4, 1, 6, 3, 5]
        routing = build_routing(Graph.ring(5))
        assert routing.stride == 1
        assert routing.length == 5
        assert virtual_ids(ids, routing) == [
            ids[v] for v in routing.walk
        ]
        assert pulse_bound(ids, routing) == 5 * 6


class TestEngineElection:
    @pytest.mark.parametrize("batched", [False, True])
    @pytest.mark.parametrize(
        "graph",
        [theta_graph(), theta_graph(0, 1, 2), nested_ears(3), Graph.ring(5)],
        ids=["theta", "theta-012", "nested-3", "ring-5"],
    )
    def test_elects_argmax_with_exact_bound(self, graph, batched):
        ids = _ids_for(graph.n, seed=2)
        outcome = run_ear_election(graph, ids, batched=batched)
        expected = max(range(graph.n), key=lambda v: ids[v])
        assert outcome.leaders == [expected]
        assert all(
            state is LeaderState.NON_LEADER
            for v, state in enumerate(outcome.states)
            if v != expected
        )
        assert outcome.total_pulses == outcome.claimed_bound
        assert outcome.run.quiescent

    def test_report_front_door(self):
        graph = theta_graph()
        ids = _ids_for(graph.n)
        report = elect_leader_ear(graph, ids)
        assert report.setting == "ear"
        assert report.leader == max(range(graph.n), key=lambda v: ids[v])
        assert report.total_pulses == report.claimed_bound
        assert not report.terminated  # stabilizing, like Algorithm 1

    @pytest.mark.parametrize("seed", range(6))
    def test_random_ear_compositions(self, seed):
        graph = random_ear_composition(seed)
        ids = _ids_for(graph.n, seed=seed)
        outcome = run_ear_election(graph, ids)
        assert outcome.leaders == [max(range(graph.n), key=lambda v: ids[v])]
        assert outcome.total_pulses == outcome.claimed_bound

    @given(graph=two_edge_connected_graphs(max_cycle=4, max_ears=2))
    @settings(deadline=None, max_examples=20)
    def test_property_unique_leader_exact_pulses(self, graph):
        ids = _ids_for(graph.n, seed=1)
        outcome = run_ear_election(graph, ids)
        assert outcome.leaders == [max(range(graph.n), key=lambda v: ids[v])]
        assert outcome.total_pulses == outcome.claimed_bound

    def test_validates_ids(self):
        graph = theta_graph()
        with pytest.raises(ConfigurationError):
            run_ear_election(graph, [1, 2, 3])  # wrong length
        with pytest.raises(ConfigurationError):
            run_ear_election(graph, [1, 1] + list(range(2, graph.n)))


class TestBridgeRefusal:
    def test_bridge_graph_refused_with_witness(self):
        graph = bridge_graph()
        with pytest.raises(BridgeWitnessError) as excinfo:
            run_ear_election(graph, _ids_for(graph.n))
        assert excinfo.value.bridge == (2, 3)

    def test_disconnected_refused_without_edge(self):
        graph = Graph.from_edges(
            6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        )
        with pytest.raises(BridgeWitnessError) as excinfo:
            run_ear_election(graph, _ids_for(6))
        assert excinfo.value.bridge is None

    def test_witness_is_a_configuration_error(self):
        """Callers catching the package's config errors keep working."""
        with pytest.raises(ConfigurationError):
            run_ear_election(bridge_graph(), _ids_for(bridge_graph().n))


class TestFleetPath:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_fleet_matches_engine(self, backend):
        from repro.simulator.fleet import run_ear_fleet

        graph = theta_graph()
        id_lists = [_ids_for(graph.n, seed=s) for s in range(6)]
        result = run_ear_fleet(graph, id_lists, backend=backend)
        assert result.leaders == result.expected_leaders
        for b, ids in enumerate(id_lists):
            outcome = run_ear_election(graph, ids)
            assert result.leaders[b] == outcome.leaders[0]
            assert result.virtual.total_pulses[b] == outcome.total_pulses
        # Physical IDs round-trip through the virtual-ID encoding.
        assert result.physical_ids == id_lists

    def test_backends_agree(self):
        from repro.simulator.fleet import run_ear_fleet

        graph = nested_ears(3)
        id_lists = [_ids_for(graph.n, seed=s) for s in range(4)]
        py = run_ear_fleet(graph, id_lists, backend="python")
        np_ = run_ear_fleet(graph, id_lists, backend="numpy")
        assert py.leaders == np_.leaders
        assert py.virtual.rho_cw == np_.virtual.rho_cw
        assert py.port_rho == np_.port_rho
        assert py.port_sigma == np_.port_sigma

    def test_fleet_refuses_bridges(self):
        from repro.simulator.fleet import run_ear_fleet

        graph = bridge_graph()
        with pytest.raises(BridgeWitnessError):
            run_ear_fleet(graph, [_ids_for(graph.n)])


class TestStatisticalBattery:
    def test_theta_clean(self):
        from repro.verification.statistical import run_topology_check

        report = run_topology_check(
            theta_graph(), id_max=64, samples=24, block_size=8
        )
        assert report.clean
        assert report.violations == 0
        assert report.walk_length == 13 and report.stride == 2

    def test_shards_compose(self):
        """Any shard partition reproduces the uninterrupted sweep."""
        from repro.verification.statistical import run_topology_shard

        graph = theta_graph(0, 1, 2)
        edges = sorted(graph.edges)
        whole = run_topology_shard(graph.n, edges, 64, 0, 20)
        parts = run_topology_shard(graph.n, edges, 64, 0, 7) + \
            run_topology_shard(graph.n, edges, 64, 7, 20)
        assert whole == parts == []

    def test_refuses_bridges(self):
        from repro.verification.statistical import run_topology_check

        with pytest.raises(BridgeWitnessError):
            run_topology_check(bridge_graph(), samples=4)


class TestExplorerCertification:
    def test_tiny_theta_certified_exhaustively(self):
        """The reduced explorer certifies the ear election end to end on
        a tiny instance: single terminal class, unique physical leader at
        the argmax vertex, exact pulse count on every maximal schedule."""
        from repro.core.ear_election import EarElectionNode
        from repro.core.kernels.ear import build_routing as routing_of
        from repro.verification.reduced import explore_reduced

        graph = theta_graph(0, 1, 1)  # smallest theta: n=4
        ids = [2, 4, 1, 3]
        routing = routing_of(graph)
        vids = virtual_ids(ids, routing)

        def factory():
            nodes = []
            for vertex in range(graph.n):
                out_ports, in_route = routing.node_tables(vertex)
                node_vids = tuple(
                    vids[pos] for pos in routing.occurrences[vertex]
                )
                nodes.append(EarElectionNode(node_vids, out_ports, in_route))
            return routing.topology.wire(nodes)

        result = explore_reduced(factory)
        assert result.confluent
        assert result.terminal_total_sent == [pulse_bound(ids, routing)]
