"""Properties of the ring-symmetry canonicalization layer.

The symmetry reduction is sound only if canonicalization is a true orbit
invariant: every instance in a dihedral orbit must canonicalize its root
state to the same bytes, the canonicalizing element must be a fixed
point of serialization, and channel-label translation must round-trip.
These are exactly the metamorphic properties PR 2 pinned on *live* runs
(rotation/relabeling/orientation-flip duality), lifted to the explorer's
state encoding and checked with the shared strategies.
"""

from __future__ import annotations

import pytest
from hypothesis import given

from strategies import flipped_rings, rotated_rings, relabeled_rings

from repro.core.nonoriented import NonOrientedNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.exceptions import ConfigurationError
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.verification import RingSymmetry, explore_reduced
from repro.verification.reduced import _RState, _Static


def _root_components(network):
    """The packed per-node/per-channel components of a fresh root state."""
    static = _Static(network)
    root = _RState(network, static)
    from repro.verification.reduced import _ReducedAPI

    for index, node in enumerate(root.nodes):
        node.on_init(_ReducedAPI(static, root, index))
    return root.packed_components()


def _oriented_network(node_cls, ids):
    return build_oriented_ring([node_cls(i) for i in ids]).network


def _nonoriented_network(ids, flips):
    return build_nonoriented_ring(
        [NonOrientedNode(i) for i in ids], flips=flips
    ).network


# -- group structure ---------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 3, 5])
def test_group_order(n):
    ids = list(range(1, n + 1))
    network = _oriented_network(WarmupNode, ids)
    assert RingSymmetry.from_network(network).order == n
    network = _oriented_network(WarmupNode, ids)
    assert RingSymmetry.from_network(network, include_duals=True).order == 2 * n


@pytest.mark.parametrize("include_duals", [False, True])
def test_channel_translation_roundtrips(include_duals):
    network = _nonoriented_network([3, 1, 4, 2], [True, False, False, True])
    sym = RingSymmetry.from_network(network, include_duals=include_duals)
    for index, element in enumerate(sym.elements):
        for cid in range(2 * sym.n):
            # to_canonical_channel is the inverse of chan_src, both ways.
            assert element.chan_src[sym.to_canonical_channel(index, cid)] == cid
            assert sym.to_canonical_channel(index, element.chan_src[cid]) == cid


@pytest.mark.parametrize("include_duals", [False, True])
def test_elements_are_permutations(include_duals):
    network = _nonoriented_network([2, 5, 1], [False, True, False])
    sym = RingSymmetry.from_network(network, include_duals=include_duals)
    for element in sym.elements:
        assert sorted(element.node_src) == list(range(sym.n))
        assert sorted(element.chan_src) == list(range(2 * sym.n))
        assert len(element.flip_image) == sym.n


# -- structural validation ----------------------------------------------------


def test_content_carrying_ring_is_rejected():
    network = build_oriented_ring(
        [WarmupNode(i) for i in (1, 2, 3)], defective=False
    ).network
    with pytest.raises(ConfigurationError, match="defective"):
        RingSymmetry.from_network(network)


def test_non_ring_channel_layout_is_rejected():
    network = _oriented_network(WarmupNode, [1, 2, 3])
    # Sabotage the builder convention: swap two channels' identities.
    network.channels[0], network.channels[1] = (
        network.channels[1],
        network.channels[0],
    )
    with pytest.raises(ConfigurationError, match="ring"):
        RingSymmetry.from_network(network)


# -- canonicalization properties ----------------------------------------------


@given(rotated_rings(min_size=2, max_size=5, max_id=8))
def test_canonical_root_is_rotation_invariant(case):
    """Rotating the clockwise ID list must not change the canonical root."""
    ids, k = case
    rotated = ids[k:] + ids[:k]
    sym_a = RingSymmetry.from_network(_oriented_network(TerminatingNode, ids))
    sym_b = RingSymmetry.from_network(
        _oriented_network(TerminatingNode, rotated)
    )
    key_a = sym_a.canonical(*_root_components(_oriented_network(TerminatingNode, ids)))
    key_b = sym_b.canonical(
        *_root_components(_oriented_network(TerminatingNode, rotated))
    )
    assert key_a[0] == key_b[0]
    # Unique IDs: trivial stabilizer, so the canonical element is unambiguous
    # and the orbit factor is the full group order.
    assert not key_a[2] and not key_b[2]
    assert (
        sym_a.orbit_factor(
            *_root_components(_oriented_network(TerminatingNode, ids))
        )
        == len(ids)
    )


@given(flipped_rings(min_size=2, max_size=4, max_id=8))
def test_canonical_root_is_orientation_dual_invariant(case):
    """A non-oriented ring and its orientation-dual share a canonical root.

    The dual instance (the reflection the metamorphic duality test pins on
    live runs) reverses the clockwise ID order and negates the reversed
    flip bits; with duals in the group both instances are one orbit.
    """
    ids, flips = case
    dual_ids = list(reversed(ids))
    dual_flips = [not f for f in reversed(flips)]
    net_a = _nonoriented_network(ids, flips)
    net_b = _nonoriented_network(dual_ids, dual_flips)
    sym_a = RingSymmetry.from_network(net_a, include_duals=True)
    sym_b = RingSymmetry.from_network(net_b, include_duals=True)
    key_a = sym_a.canonical(*_root_components(_nonoriented_network(ids, flips)))
    key_b = sym_b.canonical(
        *_root_components(_nonoriented_network(dual_ids, dual_flips))
    )
    assert key_a[0] == key_b[0]


@given(rotated_rings(min_size=2, max_size=4, max_id=6))
def test_canonicalization_is_idempotent_and_a_fixed_point(case):
    """canonical() is deterministic and its element serializes to itself."""
    ids, _ = case
    network = _oriented_network(WarmupNode, ids)
    sym = RingSymmetry.from_network(network)
    components = _root_components(_oriented_network(WarmupNode, ids))
    best, index, ambiguous = sym.canonical(*components)
    assert sym.canonical(*components) == (best, index, ambiguous)
    assert sym.serialize(index, *components) == best
    # The canonical bytes are minimal over every group image.
    for other in range(sym.order):
        assert best <= sym.serialize(other, *components)


@given(relabeled_rings(min_size=2, max_size=3, max_id=5))
def test_full_reduction_verdicts_are_relabeling_invariant(case):
    """Order-preserving relabeling preserves every certificate verdict.

    Relabeling changes the canonical bytes (IDs are state), so the
    invariance lives one level up: the full-reduction certificate —
    confluence, violations, orbit factor, terminal count — must match.
    """
    ids, relabeled = case

    def factory(assignment):
        return lambda: _oriented_network(WarmupNode, assignment)

    a = explore_reduced(factory(ids), reduction="full")
    b = explore_reduced(factory(relabeled), reduction="full")
    assert a.confluent == b.confluent
    assert a.quiescence_violations == b.quiescence_violations
    assert a.orbit_factor == b.orbit_factor
    assert len(a.terminal_node_fingerprints) == len(b.terminal_node_fingerprints)


# -- orbit factors and stabilizers --------------------------------------------


def test_orbit_factor_counts_stabilizer():
    # [2,2]: rotation-invariant instance, orbit factor 1.
    sym = RingSymmetry.from_network(_oriented_network(WarmupNode, [2, 2]))
    assert sym.orbit_factor(*_root_components(_oriented_network(WarmupNode, [2, 2]))) == 1
    # [1,2,1,2]: stabilizer of order 2 inside 4 rotations → orbit factor 2.
    sym = RingSymmetry.from_network(_oriented_network(WarmupNode, [1, 2, 1, 2]))
    assert (
        sym.orbit_factor(
            *_root_components(_oriented_network(WarmupNode, [1, 2, 1, 2]))
        )
        == 2
    )


def test_stabilized_root_is_ambiguous():
    network = _oriented_network(WarmupNode, [1, 2, 1, 2])
    sym = RingSymmetry.from_network(network)
    _, _, ambiguous = sym.canonical(
        *_root_components(_oriented_network(WarmupNode, [1, 2, 1, 2]))
    )
    assert ambiguous


def test_permute_nodes_reorders_same_objects():
    network = _oriented_network(WarmupNode, [3, 1, 2])
    sym = RingSymmetry.from_network(network)
    nodes = list(network.nodes)
    image = sym.permute_nodes(1, nodes)
    assert sorted(id(node) for node in image) == sorted(id(node) for node in nodes)
    assert [node.node_id for node in image] == [1, 2, 3]
