"""Theorem 2 / Proposition 15 (Algorithm 3): non-oriented rings.

Checks, for both virtual-ID schemes and across adversarial port flips:

* a single leader — the maximal-ID node — stabilizes;
* every node labels a CW port such that the labels realize one
  consistent rotational direction;
* message complexity exactly ``n(4*IDmax - 1)`` (doubled scheme,
  Prop 15) and exactly ``n(2*IDmax + 1)`` (successor scheme, Thm 2);
* nodes never terminate (stabilization only);
* Lemma 16: duplicates are fine as long as the maximum is unique.
"""

import random

import pytest

from repro.core.common import LeaderState
from repro.core.nonoriented import IdScheme, run_nonoriented
from repro.exceptions import ConfigurationError
from tests.conftest import SCHEDULER_FACTORIES, flip_samples, id_workloads

SCHEMES = [IdScheme.SUCCESSOR, IdScheme.DOUBLED]


class TestVirtualIds:
    def test_doubled_scheme_formula(self):
        assert IdScheme.DOUBLED.virtual_ids(5) == (9, 10)
        assert IdScheme.DOUBLED.virtual_ids(1) == (1, 2)

    def test_successor_scheme_formula(self):
        assert IdScheme.SUCCESSOR.virtual_ids(5) == (5, 6)
        assert IdScheme.SUCCESSOR.virtual_ids(1) == (1, 2)

    def test_doubled_virtual_ids_are_globally_unique(self):
        ids = [3, 7, 5, 2]
        virtual = [v for node_id in ids for v in IdScheme.DOUBLED.virtual_ids(node_id)]
        assert len(set(virtual)) == len(virtual)

    def test_successor_virtual_ids_may_collide(self):
        # The whole point of Lemma 16: collisions are tolerable.
        virtual = [v for node_id in (3, 4) for v in IdScheme.SUCCESSOR.virtual_ids(node_id)]
        assert len(set(virtual)) < len(virtual)


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
class TestElectionAcrossFlips:
    def test_unique_leader_is_max_node(self, scheme, ids):
        for flips in flip_samples(len(ids)):
            outcome = run_nonoriented(ids, flips=flips, scheme=scheme)
            expected = max(range(len(ids)), key=lambda i: ids[i])
            assert outcome.leaders == [expected], (ids, flips)

    def test_orientation_is_consistent(self, scheme, ids):
        for flips in flip_samples(len(ids)):
            outcome = run_nonoriented(ids, flips=flips, scheme=scheme)
            assert outcome.orientation_consistent, (ids, flips)

    def test_nodes_do_not_terminate(self, scheme, ids):
        outcome = run_nonoriented(ids, scheme=scheme)
        assert not any(outcome.run.terminated)
        assert outcome.run.quiescent


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
class TestExactComplexity:
    def test_pulse_count_matches_scheme_formula(self, scheme, ids):
        outcome = run_nonoriented(ids, scheme=scheme)
        assert outcome.total_pulses == outcome.claimed_message_bound

    def test_pulse_count_is_flip_invariant(self, scheme):
        ids = [4, 9, 2, 6]
        counts = {
            run_nonoriented(ids, flips=flips, scheme=scheme).total_pulses
            for flips in flip_samples(4, count=8)
        }
        assert len(counts) == 1

    def test_pulse_count_is_schedule_invariant(self, scheme):
        ids = [4, 9, 2, 6]
        counts = {
            run_nonoriented(ids, scheme=scheme, scheduler=factory()).total_pulses
            for factory in SCHEDULER_FACTORIES.values()
        }
        assert len(counts) == 1


class TestSchemeComparison:
    """A2 ablation: the successor scheme halves Prop 15's cost."""

    def test_successor_cheaper_than_doubled(self):
        ids = [3, 11, 6]
        doubled = run_nonoriented(ids, scheme=IdScheme.DOUBLED).total_pulses
        successor = run_nonoriented(ids, scheme=IdScheme.SUCCESSOR).total_pulses
        assert doubled == 3 * (4 * 11 - 1)
        assert successor == 3 * (2 * 11 + 1)
        assert successor < doubled

    def test_ratio_approaches_two_for_large_ids(self):
        ids = [500, 999, 123]
        doubled = run_nonoriented(ids, scheme=IdScheme.DOUBLED).total_pulses
        successor = run_nonoriented(ids, scheme=IdScheme.SUCCESSOR).total_pulses
        assert 1.9 < doubled / successor < 2.0


class TestExhaustiveSmallRings:
    """Every port-flip pattern on small rings (the F1 figure-1 check)."""

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_all_flip_patterns(self, n):
        from repro.simulator.ring import all_flip_patterns

        rng = random.Random(n)
        ids = rng.sample(range(1, 30), n)
        expected = max(range(n), key=lambda i: ids[i])
        for flips in all_flip_patterns(n):
            outcome = run_nonoriented(ids, flips=list(flips))
            assert outcome.leaders == [expected], (ids, flips)
            assert outcome.orientation_consistent, (ids, flips)


class TestOrientationDirection:
    def test_agreed_direction_is_seeded_by_leaders_port_one(self):
        # The winning direction is the one the leader's Port_1 faces: it
        # carries the strictly larger virtual ID.
        ids = [2, 9, 4]
        for flips in flip_samples(3, count=8):
            outcome = run_nonoriented(ids, flips=flips)
            leader = outcome.leaders[0]
            # The leader's ID^(1) seeds the winning direction: its Port_1
            # sends the dominant pulses, so Port_1 is its CW label.
            assert outcome.nodes[leader].cw_port_label == 1
            labels = outcome.cw_port_labels
            matches_cw = all(
                labels[v] == outcome.topology.cw_port(v) for v in range(3)
            )
            matches_ccw = all(
                labels[v] == outcome.topology.ccw_port(v) for v in range(3)
            )
            assert matches_cw != matches_ccw  # exactly one direction wins

    def test_leader_cw_label_matches_its_port_one_direction(self):
        # Decode which physical direction the leader's Port_1 faces and
        # check all nodes' CW labels point that way.
        ids = [2, 9, 4]
        for flips in flip_samples(3, count=8):
            outcome = run_nonoriented(ids, flips=flips)
            leader = outcome.leaders[0]
            leader_port1_is_true_cw = outcome.topology.cw_port(leader) == 1
            labels = outcome.cw_port_labels
            if leader_port1_is_true_cw:
                assert all(
                    labels[v] == outcome.topology.cw_port(v)
                    for v in range(len(ids))
                )
            else:
                assert all(
                    labels[v] == outcome.topology.ccw_port(v)
                    for v in range(len(ids))
                )


class TestLemma16NonUniqueIds:
    def test_duplicates_with_unique_max_succeed(self):
        ids = [3, 3, 8, 3]
        outcome = run_nonoriented(ids, require_unique_ids=False)
        assert outcome.leaders == [2]
        assert outcome.orientation_consistent

    def test_duplicate_max_breaks_election(self):
        # With two holders of the maximum, no single leader can emerge —
        # this is exactly the failure mode the anonymous setting risks.
        ids = [7, 3, 7]
        outcome = run_nonoriented(ids, require_unique_ids=False)
        assert len(outcome.leaders) != 1

    def test_unique_ids_enforced_by_default(self):
        with pytest.raises(ConfigurationError):
            run_nonoriented([4, 4, 2])


class TestDegenerateRings:
    def test_single_node(self):
        outcome = run_nonoriented([5])
        assert outcome.leaders == [0]
        assert outcome.total_pulses == 2 * 5 + 1

    @pytest.mark.parametrize("flips", [[False, False], [True, False], [True, True]])
    def test_two_nodes(self, flips):
        outcome = run_nonoriented([3, 8], flips=flips)
        assert outcome.leaders == [1]
        assert outcome.orientation_consistent
        assert outcome.total_pulses == 2 * (2 * 8 + 1)
