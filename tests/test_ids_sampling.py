"""Algorithm 4 (Section 5): geometric ID sampling and Lemma 18's events."""

import math
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.ids.sampling import (
    GeometricIdSampler,
    expected_bit_count,
    max_is_unique,
    predicted_max_bits,
    sample_ids,
)


class TestSamplerParameters:
    def test_p_formula(self):
        sampler = GeometricIdSampler(c=2.0)
        assert sampler.p == pytest.approx(2.0 ** (-1.0 / 4.0))

    def test_larger_c_gives_heavier_tail(self):
        assert GeometricIdSampler(c=4.0).p > GeometricIdSampler(c=1.0).p

    @pytest.mark.parametrize("bad_c", [0.0, -1.0])
    def test_non_positive_c_rejected(self, bad_c):
        with pytest.raises(ConfigurationError):
            GeometricIdSampler(c=bad_c)


class TestBitCountDistribution:
    def test_support_starts_at_one(self):
        sampler = GeometricIdSampler(c=1.0)
        rng = random.Random(0)
        counts = [sampler.sample_bit_count(rng) for _ in range(2000)]
        assert min(counts) >= 1

    def test_mean_matches_geometric_expectation(self):
        # E[BitCount] = 1/(1-p); with 20k samples the mean should land
        # within a few percent.
        sampler = GeometricIdSampler(c=2.0)
        rng = random.Random(1)
        samples = [sampler.sample_bit_count(rng) for _ in range(20000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(expected_bit_count(2.0), rel=0.05)

    def test_tail_probability_decays_geometrically(self):
        sampler = GeometricIdSampler(c=2.0)
        rng = random.Random(2)
        samples = [sampler.sample_bit_count(rng) for _ in range(20000)]
        threshold = 10
        empirical_tail = sum(1 for s in samples if s > threshold) / len(samples)
        # P(BitCount > t) = p**t
        assert empirical_tail == pytest.approx(sampler.p**threshold, rel=0.25)


class TestIdSampling:
    def test_ids_are_positive(self):
        rng = random.Random(3)
        ids = sample_ids(500, c=2.0, rng=rng)
        assert all(node_id >= 1 for node_id in ids)

    def test_reproducible_with_seeded_rng(self):
        a = sample_ids(50, c=2.0, rng=random.Random(7))
        b = sample_ids(50, c=2.0, rng=random.Random(7))
        assert a == b

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_ids(0)


class TestLemma18Events:
    """Max-uniqueness holds at a rate consistent with 1 - O(n^-c)."""

    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_max_unique_rate_is_high(self, n):
        sampler = GeometricIdSampler(c=2.0)
        trials = 300
        unique = sum(
            1
            for trial in range(trials)
            if max_is_unique(sampler.sample_many(n, random.Random(trial * 1000 + n)))
        )
        # The paper promises 1 - O(n^-c); empirically the rate is far
        # above 0.8 already at small n, and grows with n.
        assert unique / trials > 0.8

    def test_uniqueness_rate_does_not_collapse_with_n(self):
        # The union-bound character of Lemma 18: bigger rings keep the
        # failure probability bounded (it *decreases* polynomially).
        sampler = GeometricIdSampler(c=2.0)

        def rate(n: int) -> float:
            trials = 200
            wins = sum(
                1
                for trial in range(trials)
                if max_is_unique(
                    sampler.sample_many(n, random.Random(trial * 7919 + n))
                )
            )
            return wins / trials

        assert rate(256) >= rate(4) - 0.1

    def test_max_id_magnitude_is_polynomial_in_n(self):
        # Lemma 18: the max ID is n^Theta(c) — its *bit length* should
        # grow roughly like log_{1/p}(n), far below linear in n.
        sampler = GeometricIdSampler(c=2.0)
        for n in (16, 64, 256):
            maxima = [
                max(sampler.sample_many(n, random.Random(trial * 31 + n)))
                for trial in range(50)
            ]
            median_bits = sorted(m.bit_length() for m in maxima)[25]
            predicted = predicted_max_bits(n, 2.0)
            assert 0.3 * predicted <= median_bits <= 3.0 * predicted + 4

    def test_max_is_unique_predicate(self):
        assert max_is_unique([1, 2, 3])
        assert not max_is_unique([3, 1, 3])
        assert max_is_unique([5])
