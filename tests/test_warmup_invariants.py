"""Executable Lemmas 6-14 checked along entire executions of Algorithm 1."""

import pytest

from repro.core.invariants import (
    ALGORITHM1_HOOKS,
    InvariantViolation,
    check_end_state_corollary13,
    check_lemma6_cw,
    check_pulses_in_transit_match_lemma12,
)
from repro.core.warmup import WarmupNode
from repro.simulator.engine import Engine
from repro.simulator.ring import build_oriented_ring
from tests.conftest import SCHEDULER_FACTORIES, id_workloads


def run_with_hooks(ids, scheduler):
    nodes = [WarmupNode(node_id) for node_id in ids]
    topology = build_oriented_ring(nodes)
    engine = Engine(
        topology.network, scheduler=scheduler, invariant_hooks=ALGORITHM1_HOOKS
    )
    result = engine.run()
    return nodes, result


class TestLemma6AlongExecutions:
    """sigma_cw == rho_cw + 1 while rho_cw < ID, == rho_cw afterwards."""

    @pytest.mark.parametrize("workload", sorted(id_workloads()))
    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULER_FACTORIES))
    def test_invariants_hold_after_every_delivery(self, workload, scheduler_name):
        ids = id_workloads()[workload]
        scheduler = SCHEDULER_FACTORIES[scheduler_name]()
        nodes, result = run_with_hooks(ids, scheduler)
        assert result.quiescent  # hooks raised nothing along the way

    def test_invariants_hold_with_non_unique_ids(self):
        # Lemma 16: the invariants make no reference to ID uniqueness.
        for ids in ([2, 2, 5], [4, 4, 4], [1, 6, 6, 1]):
            nodes, result = run_with_hooks(ids, SCHEDULER_FACTORIES["random1"]())
            assert result.quiescent


class TestQuiescenceCharacterization:
    """Lemma 11's three equivalent statements, at the end state."""

    @pytest.mark.parametrize("workload", sorted(id_workloads()))
    def test_corollary13_end_state(self, workload):
        ids = id_workloads()[workload]
        nodes, result = run_with_hooks(ids, SCHEDULER_FACTORIES["global_fifo"]())
        check_end_state_corollary13(nodes)  # rho == sigma == IDmax for all

    def test_all_nodes_meet_their_ids(self):
        # Lemma 12: eventually rho_cw[v] >= ID_v at every node.
        ids = [7, 2, 9, 4]
        nodes, result = run_with_hooks(ids, SCHEDULER_FACTORIES["lifo"]())
        for node in nodes:
            assert node.rho_cw >= node.node_id


class TestInvariantCheckersDetectViolations:
    """The executable lemmas must actually *fail* on corrupted state."""

    def test_lemma6_checker_detects_corruption(self):
        nodes = [WarmupNode(3), WarmupNode(5)]
        topology = build_oriented_ring(nodes)
        engine = Engine(topology.network)
        engine.run()
        nodes[0].sigma_cw += 1  # corrupt the ledger
        with pytest.raises(InvariantViolation):
            check_lemma6_cw(engine)

    def test_corollary13_checker_detects_corruption(self):
        nodes = [WarmupNode(3), WarmupNode(5)]
        topology = build_oriented_ring(nodes)
        Engine(topology.network).run()
        nodes[1].rho_cw -= 1
        with pytest.raises(InvariantViolation):
            check_end_state_corollary13(nodes)

    def test_lemma12_accounting_rejects_wrong_node_type(self):
        from repro.core.terminating import TerminatingNode

        nodes = [TerminatingNode(3), TerminatingNode(5)]
        topology = build_oriented_ring(nodes)
        engine = Engine(topology.network)
        engine.run()
        with pytest.raises(InvariantViolation):
            check_pulses_in_transit_match_lemma12(engine)
