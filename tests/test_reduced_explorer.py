"""Soundness tests for the partial-order-reduced explorer.

The reduced search is only useful if its verdicts are the unreduced
search's verdicts; these tests pin the preserved properties one by one
(terminal sets, confluence and *non*-confluence, violation existence,
message counts), the enforcement of silent-port declarations, fault-space
exploration, invariant hooks, budgets, and the acceptance-criterion
reduction factor on the reference instance.
"""

from __future__ import annotations

import pytest

from repro.core.invariants import (
    ALGORITHM1_HOOKS,
    ALGORITHM2_HOOKS,
    InvariantViolation,
    hooks_for,
)
from repro.core.nonoriented import NonOrientedNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.exceptions import ProtocolViolation
from repro.simulator.faults import FaultPlan, apply_fault_plan
from repro.simulator.node import Node
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.verification import (
    ExplorationLimitExceeded,
    explore_all_schedules,
    explore_reduced,
)

REFERENCE_IDS = [1, 2, 3, 4, 5, 6]


def oriented_factory(node_cls, ids, **kwargs):
    def build():
        return build_oriented_ring([node_cls(i, **kwargs) for i in ids]).network

    return build


def assert_same_verdicts(factory):
    """Both explorers must certify identical terminal-state facts."""
    full = explore_all_schedules(factory)
    reduced = explore_reduced(factory)
    assert set(full.terminal_node_fingerprints) == set(
        reduced.terminal_node_fingerprints
    )
    assert full.confluent == reduced.confluent
    assert sorted(full.terminal_total_sent) == sorted(reduced.terminal_total_sent)
    assert (full.quiescence_violations == 0) == (
        reduced.quiescence_violations == 0
    )
    assert reduced.states_explored <= full.states_explored
    return full, reduced


def test_reference_instance_meets_10x_reduction():
    full, reduced = assert_same_verdicts(
        oriented_factory(WarmupNode, REFERENCE_IDS)
    )
    assert reduced.confluent and reduced.quiescence_violations == 0
    assert full.states_explored >= 10 * reduced.states_explored
    expected = len(REFERENCE_IDS) * max(REFERENCE_IDS)
    assert reduced.terminal_total_sent == [expected]


def test_frontier_instance_beyond_unreduced_budget():
    ids = [1, 2, 3, 4, 5, 6, 7]
    budget = 2_000
    factory = oriented_factory(WarmupNode, ids)
    with pytest.raises(ExplorationLimitExceeded):
        explore_all_schedules(factory, max_states=budget)
    reduced = explore_reduced(factory, max_states=budget)
    assert reduced.confluent and reduced.quiescence_violations == 0
    assert reduced.terminal_total_sent == [len(ids) * max(ids)]


@pytest.mark.parametrize("ids", [[1, 2], [2, 3, 1], [1, 2, 3, 4]])
def test_terminating_verdicts_agree(ids):
    full, reduced = assert_same_verdicts(oriented_factory(TerminatingNode, ids))
    assert reduced.confluent
    assert reduced.terminal_total_sent == [len(ids) * (2 * max(ids) + 1)]


@pytest.mark.parametrize(
    "flips", [[False, False, False], [True, False, True], [True, True, True]]
)
def test_nonoriented_verdicts_agree(flips):
    def factory():
        return build_nonoriented_ring(
            [NonOrientedNode(i) for i in (2, 3, 1)], flips=flips
        ).network

    _full, reduced = assert_same_verdicts(factory)
    assert reduced.confluent and reduced.quiescence_violations == 0


class FirstArrivalNode(Node):
    """Deliberately schedule-dependent: remembers which port won the race."""

    def __init__(self, node_id):
        super().__init__()
        self.node_id = node_id
        self.first_port = None
        self.received = 0

    def on_init(self, api):
        api.send(0)
        api.send(1)

    def on_message(self, api, port, content):
        self.received += 1
        if self.first_port is None:
            self.first_port = port


def test_non_confluence_is_preserved():
    def factory():
        return build_oriented_ring(
            [FirstArrivalNode(i) for i in (1, 2, 3)]
        ).network

    full, reduced = assert_same_verdicts(factory)
    assert not reduced.confluent
    assert len(reduced.terminal_node_fingerprints) > 1


def test_quiescence_violation_existence_is_preserved():
    # The lag-discipline ablation of Algorithm 2 has schedules that
    # deliver pulses to terminated nodes; the reduced search must still
    # find at least one witness (the count may legitimately differ).
    factory = oriented_factory(TerminatingNode, [1, 2], strict_lag=False)
    full = explore_all_schedules(factory)
    reduced = explore_reduced(factory)
    assert full.quiescence_violations > 0
    assert reduced.quiescence_violations > 0
    assert set(full.terminal_node_fingerprints) == set(
        reduced.terminal_node_fingerprints
    )


class LyingSilentNode(Node):
    """Declares port 0 silent, then sends on it — must be caught."""

    SILENT_SEND_PORTS = (0,)

    def __init__(self, node_id):
        super().__init__()
        self.node_id = node_id

    def on_init(self, api):
        api.send(1)

    def on_message(self, api, port, content):
        api.send(0)


@pytest.mark.parametrize("explore", [explore_all_schedules, explore_reduced])
def test_silent_port_declaration_is_enforced(explore):
    def factory():
        return build_oriented_ring([LyingSilentNode(i) for i in (1, 2)]).network

    with pytest.raises(ProtocolViolation, match="silent"):
        explore(factory)


def test_budget_is_enforced_by_reduced_explorer():
    with pytest.raises(ExplorationLimitExceeded):
        explore_reduced(
            oriented_factory(TerminatingNode, [2, 3, 1, 4]), max_states=10
        )


@pytest.mark.parametrize(
    "plan",
    [
        FaultPlan(drop_rate=0.3, duplicate_rate=0.0, seed=7),
        FaultPlan(drop_rate=0.2, duplicate_rate=0.2, seed=11),
    ],
)
def test_fault_space_exploration_agrees(plan):
    def factory():
        network = build_oriented_ring(
            [WarmupNode(i) for i in (1, 2, 3)]
        ).network
        apply_fault_plan(network, plan)
        return network

    assert_same_verdicts(factory)


def test_invariant_hooks_run_at_reduced_states():
    result = explore_reduced(
        oriented_factory(WarmupNode, [2, 3, 1, 4]),
        invariant_hooks=ALGORITHM1_HOOKS,
    )
    assert result.confluent
    result = explore_reduced(
        oriented_factory(TerminatingNode, [2, 3, 1]),
        invariant_hooks=ALGORITHM2_HOOKS,
    )
    assert result.confluent


def test_invariant_hook_failures_propagate():
    def broken_hook(engine):
        if engine.network.pending_messages() == 0:
            raise InvariantViolation("tripwire at quiescence")

    with pytest.raises(InvariantViolation, match="tripwire"):
        explore_reduced(
            oriented_factory(WarmupNode, [1, 2, 3]),
            invariant_hooks=(broken_hook,),
        )


def test_hooks_registry_covers_cli_algorithms():
    assert hooks_for("warmup") == ALGORITHM1_HOOKS
    assert hooks_for("terminating") == ALGORITHM2_HOOKS
    assert hooks_for("nonoriented") == ()
    with pytest.raises(KeyError):
        hooks_for("unknown")


def test_reduction_telemetry_is_consistent():
    result = explore_reduced(oriented_factory(WarmupNode, REFERENCE_IDS))
    assert result.ample_states + result.full_expansion_states > 0
    assert result.enabled_transitions >= result.transitions
    assert result.branch_reduction >= 1.0
    assert result.max_in_flight >= 1
