"""Conservation and ledger properties, hypothesis-driven.

Cross-cutting invariants of the substrate itself: whatever the algorithm
and schedule, at quiescence every sent message was received exactly once
(the model's no-loss/no-injection clause), the engine's independent
ledger agrees with the nodes' own counters, and the defective stack's
computations agree with plain Python.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonoriented import NonOrientedNode, run_nonoriented
from repro.core.terminating import TerminatingNode, run_terminating
from repro.core.warmup import WarmupNode, run_warmup
from repro.defective.ring_algorithms import SimConvergecastSum
from repro.defective.simulation import AllReduceProgram
from repro.defective.transport import run_circuit_transport
from repro.defective.universal import simulate_ring_algorithm
from repro.simulator.scheduler import ChoiceSequenceScheduler

ids_strategy = st.lists(
    st.integers(min_value=1, max_value=40), min_size=1, max_size=7, unique=True
)
schedule_strategy = st.lists(st.integers(min_value=0, max_value=10**6), max_size=200)


class TestSendReceiveConservation:
    @given(ids=ids_strategy, schedule=schedule_strategy)
    @settings(max_examples=80, deadline=None)
    def test_every_pulse_sent_is_received_warmup(self, ids, schedule):
        outcome = run_warmup(ids, scheduler=ChoiceSequenceScheduler(schedule))
        trace = outcome.run.trace
        assert trace.total_sent == trace.total_received

    @given(ids=ids_strategy, schedule=schedule_strategy)
    @settings(max_examples=80, deadline=None)
    def test_every_pulse_sent_is_received_terminating(self, ids, schedule):
        outcome = run_terminating(ids, scheduler=ChoiceSequenceScheduler(schedule))
        trace = outcome.run.trace
        assert trace.total_sent == trace.total_received
        assert trace.ignored_deliveries == 0


class TestLedgerAgreesWithNodeCounters:
    @given(ids=ids_strategy, schedule=schedule_strategy)
    @settings(max_examples=60, deadline=None)
    def test_sigma_counters_match_trace(self, ids, schedule):
        outcome = run_terminating(ids, scheduler=ChoiceSequenceScheduler(schedule))
        trace = outcome.run.trace
        for index, node in enumerate(outcome.nodes):
            assert trace.sent_by(index) == node.sigma_cw + node.sigma_ccw
            assert trace.received_by(index) == node.rho_cw + node.rho_ccw

    @given(ids=ids_strategy, schedule=schedule_strategy)
    @settings(max_examples=60, deadline=None)
    def test_rho_counters_match_trace_nonoriented(self, ids, schedule):
        outcome = run_nonoriented(
            ids, scheduler=ChoiceSequenceScheduler(schedule)
        )
        trace = outcome.run.trace
        for index, node in enumerate(outcome.nodes):
            assert trace.sent_by(index) == sum(node.sigma)
            assert trace.received_by(index) == sum(node.rho)


class TestDefectiveStackAgreesWithPython:
    @given(
        inputs=st.lists(st.integers(min_value=0, max_value=15), min_size=2, max_size=6),
        leader=st.integers(min_value=0, max_value=5),
        schedule=schedule_strategy,
    )
    @settings(max_examples=50, deadline=None)
    def test_transport_sum(self, inputs, leader, schedule):
        leader = leader % len(inputs)
        outcome = run_circuit_transport(
            inputs,
            AllReduceProgram(lambda a, b: a + b),
            leader=leader,
            scheduler=ChoiceSequenceScheduler(schedule),
        )
        assert outcome.outputs == [sum(inputs)] * len(inputs)

    @given(
        inputs=st.lists(st.integers(min_value=0, max_value=9), min_size=3, max_size=5),
        leader=st.integers(min_value=0, max_value=4),
        schedule=schedule_strategy,
    )
    @settings(max_examples=25, deadline=None)
    def test_universal_convergecast_sum(self, inputs, leader, schedule):
        leader = leader % len(inputs)
        outcome = simulate_ring_algorithm(
            [SimConvergecastSum(v) for v in inputs],
            leader=leader,
            scheduler=ChoiceSequenceScheduler(schedule),
        )
        assert outcome.outputs == [sum(inputs)] * len(inputs)
        assert outcome.run.quiescently_terminated
