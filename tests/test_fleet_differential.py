"""Differential tests: the fleet engine vs the reference engines.

The fleet (:mod:`repro.simulator.fleet`) must be *observationally
indistinguishable* from the batched and unbatched engines on every
schedule-invariant outcome — leaders, final states, exact pulse counts,
orientation verdicts — for Algorithms 1/2/3 and the Theorem 3 pipeline.
These tests drive Hypothesis-generated instances (shared strategies from
``tests/strategies.py``) through both worlds and compare element-wise,
on both fleet backends and both fleet schedulers, plus:

* multi-instance fleets vs singleton fleets (no cross-instance leakage
  through the shared arrays), and
* NumPy-vs-pure-Python bit identity, including the seeded scheduler's
  counter-based RNG stream.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.average_case import measure_oblivious_over_placements
from repro.analysis.parallel import parallel_map, shard_evenly
from repro.analysis.whp import measure_anonymous_success
from repro.core.anonymous import run_anonymous
from repro.core.kernels import terminating as terminating_kernel
from repro.core.common import LeaderState
from repro.core.nonoriented import IdScheme, run_nonoriented
from repro.core.terminating import run_terminating
from repro.core.warmup import run_warmup
from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultBurst,
    FaultModel,
    FleetFault,
    NodeCrash,
    StateCorruption,
)
from repro.accel import jit_available
from repro.ids.sampling import GeometricIdSampler
from repro.simulator.fleet import (
    HAVE_NUMPY,
    run_anonymous_fleet,
    run_nonoriented_fleet,
    run_terminating_fleet,
    run_warmup_fleet,
    schedule_bit,
)

from strategies import flipped_rings, unique_id_lists

# "compiled" rides along only when numba imports (clean skip otherwise);
# its interpreted loop bodies are exercised by test_compiled_kernels.py
# either way, so CI without the [jit] extra still covers the logic.
BACKENDS = (
    ["python"]
    + (["numpy"] if HAVE_NUMPY else [])
    + (["compiled"] if jit_available() else [])
)
SCHEDULERS = ["lockstep", "seeded"]

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def duplicate_id_lists(min_size=1, max_size=6, max_id=12):
    """Positive IDs, duplicates allowed (Algorithm 1 / Lemma 16 territory)."""
    return st.lists(
        st.integers(min_value=1, max_value=max_id),
        min_size=min_size,
        max_size=max_size,
    )


@st.composite
def uniform_pools(draw, min_n=2, max_n=4, min_b=2, max_b=5, max_id=12):
    """A fleet-shaped pool: ``B`` unique-ID rings of one shared size."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    return draw(
        st.lists(
            unique_id_lists(min_size=n, max_size=n, max_id=max_id),
            min_size=min_b,
            max_size=max_b,
        )
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestWarmupFleet:
    @given(ids=duplicate_id_lists())
    def test_matches_both_engines(self, backend, scheduler, ids):
        fleet = run_warmup_fleet([ids], backend=backend, scheduler=scheduler)
        for batched in (False, True):
            eng = run_warmup(ids, batched=batched)
            assert fleet.leaders[0] == eng.leaders
            assert fleet.total_pulses[0] == eng.total_pulses
            assert fleet.states[0] == list(eng.states)

    @given(pool=st.lists(duplicate_id_lists(min_size=3, max_size=3), min_size=2, max_size=5))
    def test_no_cross_instance_leakage(self, backend, scheduler, pool):
        fleet = run_warmup_fleet(pool, backend=backend, scheduler=scheduler)
        for b, ids in enumerate(pool):
            solo = run_warmup_fleet([ids], backend=backend, scheduler=scheduler)
            assert fleet.leaders[b] == solo.leaders[0]
            assert fleet.total_pulses[b] == solo.total_pulses[0]
            assert fleet.rho_cw[b] == solo.rho_cw[0]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestTerminatingFleet:
    @given(ids=unique_id_lists(min_size=1, max_size=6))
    def test_matches_both_engines(self, backend, scheduler, ids):
        fleet = run_terminating_fleet([ids], backend=backend, scheduler=scheduler)
        for batched in (False, True):
            eng = run_terminating(ids, batched=batched)
            assert fleet.leaders[0] == eng.leaders
            assert fleet.total_pulses[0] == eng.total_pulses
            assert fleet.states[0] == list(eng.outputs)
            assert fleet.sigma_cw[0] == [n.sigma_cw for n in eng.nodes]
            assert fleet.sigma_ccw[0] == [n.sigma_ccw for n in eng.nodes]
            assert fleet.term_pulse_sent[0] == [
                n.term_pulse_sent for n in eng.nodes
            ]
        assert all(fleet.terminated[0])
        assert fleet.ignored_deliveries == 0

    @given(ids=unique_id_lists(min_size=1, max_size=6))
    def test_schema_fingerprints_match_engine(self, backend, scheduler, ids):
        # The shared-schema digest (repro.core.schema) must agree between
        # engine node objects and fleet-reconstructed rows.
        fleet = run_terminating_fleet([ids], backend=backend, scheduler=scheduler)
        eng = run_terminating(ids)
        engine_prints = [
            terminating_kernel.SCHEMA.state_fingerprint(node)
            for node in eng.nodes
        ]
        fleet_prints = [
            terminating_kernel.SCHEMA.fleet_fingerprint(
                {
                    "node_id": ids[v],
                    "strict_lag": True,
                    "rho_cw": fleet.rho_cw[0][v],
                    "sigma_cw": fleet.sigma_cw[0][v],
                    "rho_ccw": fleet.rho_ccw[0][v],
                    "sigma_ccw": fleet.sigma_ccw[0][v],
                    "state": fleet.states[0][v],
                    "term_pulse_sent": fleet.term_pulse_sent[0][v],
                }
            )
            for v in range(len(ids))
        ]
        assert fleet_prints == engine_prints

    @given(pool=uniform_pools())
    def test_no_cross_instance_leakage(self, backend, scheduler, pool):
        fleet = run_terminating_fleet(pool, backend=backend, scheduler=scheduler)
        for b, ids in enumerate(pool):
            solo = run_terminating_fleet([ids], backend=backend, scheduler=scheduler)
            assert fleet.leaders[b] == solo.leaders[0]
            assert fleet.total_pulses[b] == solo.total_pulses[0]
            assert (fleet.rho_cw[b], fleet.rho_ccw[b]) == (
                solo.rho_cw[0],
                solo.rho_ccw[0],
            )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestNonOrientedFleet:
    @given(case=flipped_rings(), scheme=st.sampled_from(list(IdScheme)))
    def test_matches_both_engines(self, backend, scheduler, case, scheme):
        ids, flips = case
        fleet = run_nonoriented_fleet(
            [ids], flip_lists=[flips], scheme=scheme,
            backend=backend, scheduler=scheduler,
        )
        for batched in (False, True):
            eng = run_nonoriented(ids, flips=flips, scheme=scheme, batched=batched)
            assert fleet.leaders[0] == eng.leaders
            assert fleet.total_pulses[0] == eng.total_pulses
            assert fleet.states[0] == list(eng.states)
            assert fleet.orientation_consistent[0] == eng.orientation_consistent

    @given(ids=unique_id_lists(min_size=2, max_size=5))
    def test_default_flips_match_oriented_wiring(self, backend, scheduler, ids):
        fleet = run_nonoriented_fleet([ids], backend=backend, scheduler=scheduler)
        eng = run_nonoriented(ids, batched=True)
        assert fleet.leaders[0] == eng.leaders
        assert fleet.cw_port_labels[0] == [n.cw_port_label for n in eng.nodes]


class TestAnonymousFleet:
    # Scalar run_anonymous can't afford geometric-tail IDs, so the
    # differential uses pre-screened small-sample seeds; the fleet itself
    # takes any seed (fleet-only tail coverage in test_tail_seeds).
    SMALL_SEEDS = [
        s
        for s in range(60)
        if max(GeometricIdSampler(c=2.0).sample_many(5, random.Random(s))) < 500
    ][:12]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_scalar_pipeline_per_seed(self, backend):
        fleet = run_anonymous_fleet(5, self.SMALL_SEEDS, c=2.0, backend=backend)
        for i, seed in enumerate(self.SMALL_SEEDS):
            eng = run_anonymous(5, c=2.0, seed=seed)
            assert fleet.sampled_ids[i] == eng.sampled_ids
            assert fleet.max_unique[i] == eng.max_unique
            assert fleet.succeeded[i] == eng.succeeded
            assert fleet.election.total_pulses[i] == eng.election.total_pulses
            assert fleet.election.leaders[i] == eng.election.leaders

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tail_seeds_terminate(self, backend):
        # Seeds whose samples the scalar engine cannot afford still
        # finish under lap-skip, with the success predicate well-defined.
        fleet = run_anonymous_fleet(4, range(30), c=2.0, backend=backend)
        assert len(fleet.succeeded) == 30
        assert all(isinstance(flag, bool) for flag in fleet.succeeded)


@needs_numpy
class TestBackendBitIdentity:
    @given(
        pool=uniform_pools(min_n=1, max_n=5, min_b=1, max_b=4),
        scheduler=st.sampled_from(SCHEDULERS),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_terminating(self, pool, scheduler, seed):
        a = run_terminating_fleet(pool, backend="numpy", scheduler=scheduler, seed=seed)
        b = run_terminating_fleet(pool, backend="python", scheduler=scheduler, seed=seed)
        assert (
            a.leaders,
            a.states,
            a.total_pulses,
            a.rho_cw,
            a.rho_ccw,
            a.sigma_cw,
            a.sigma_ccw,
            a.term_pulse_sent,
        ) == (
            b.leaders,
            b.states,
            b.total_pulses,
            b.rho_cw,
            b.rho_ccw,
            b.sigma_cw,
            b.sigma_ccw,
            b.term_pulse_sent,
        )

    @given(case=flipped_rings(), scheduler=st.sampled_from(SCHEDULERS))
    def test_nonoriented(self, case, scheduler):
        ids, flips = case
        a = run_nonoriented_fleet(
            [ids], flip_lists=[flips], backend="numpy", scheduler=scheduler
        )
        b = run_nonoriented_fleet(
            [ids], flip_lists=[flips], backend="python", scheduler=scheduler
        )
        assert (a.leaders, a.states, a.total_pulses, a.cw_port_labels) == (
            b.leaders,
            b.states,
            b.total_pulses,
            b.cw_port_labels,
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**64 - 1),
        instance=st.integers(min_value=0, max_value=10**6),
        round_index=st.integers(min_value=0, max_value=10**6),
        channel=st.integers(min_value=0, max_value=4096),
    )
    def test_schedule_bit_is_a_bit(self, seed, instance, round_index, channel):
        assert schedule_bit(seed, instance, round_index, channel) in (0, 1)


#: Fault models exercising every clause kind of the unified language
#: (random rates + burst, deterministic drops, crash, crash-restart,
#: state corruption) — the backends must stay bit-identical under all.
FAULT_MODELS = [
    FaultModel(drop_rate=0.08, seed=5),
    FaultModel(duplicate_rate=0.08, spurious_rate=0.05, seed=7,
               burst=FaultBurst(start=2, length=4)),
    FaultModel(drops=(FleetFault(round_index=2, node=0),
                      FleetFault(round_index=4, node=1, direction="ccw"))),
    FaultModel(crashes=(NodeCrash(node=1, at_round=3),)),
    FaultModel(crashes=(NodeCrash(node=0, at_round=2, restart_after=3),)),
    FaultModel(corruptions=(StateCorruption(node=1, at_round=3,
                                            field="rho_cw", value=2),)),
]


@needs_numpy
class TestFaultedBackendBitIdentity:
    """NumPy and pure-Python columns must agree *under faults* too —
    including the end-state fields the recovery harness classifies on
    (``unfinished``) and the per-kind fault-event counters."""

    @pytest.mark.parametrize("model", FAULT_MODELS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_terminating(self, model, scheduler):
        pool = [[3, 1, 4, 2], [2, 4, 1, 3], [4, 3, 2, 1]]
        a = run_terminating_fleet(pool, backend="numpy",
                                  scheduler=scheduler, fault=model)
        b = run_terminating_fleet(pool, backend="python",
                                  scheduler=scheduler, fault=model)
        assert (
            a.leaders, a.states, a.total_pulses, a.rho_cw, a.rho_ccw,
            a.sigma_cw, a.sigma_ccw, a.unfinished, a.fault_events,
        ) == (
            b.leaders, b.states, b.total_pulses, b.rho_cw, b.rho_ccw,
            b.sigma_cw, b.sigma_ccw, b.unfinished, b.fault_events,
        )

    @pytest.mark.parametrize("model", FAULT_MODELS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_nonoriented(self, model, scheduler):
        pool = [[3, 1, 4, 2], [2, 4, 1, 3]]
        flips = [[True, False, False, True], [False, True, True, False]]
        a = run_nonoriented_fleet(pool, flip_lists=flips, backend="numpy",
                                  scheduler=scheduler, faults=model)
        b = run_nonoriented_fleet(pool, flip_lists=flips, backend="python",
                                  scheduler=scheduler, faults=model)
        assert (
            a.leaders, a.states, a.total_pulses, a.rho_cw, a.rho_ccw,
            a.unfinished, a.fault_events,
        ) == (
            b.leaders, b.states, b.total_pulses, b.rho_cw, b.rho_ccw,
            b.unfinished, b.fault_events,
        )

    @pytest.mark.parametrize("model", FAULT_MODELS)
    def test_warmup(self, model):
        pool = [[3, 1, 4, 2], [2, 4, 1, 3]]
        a = run_warmup_fleet(pool, backend="numpy", faults=model)
        b = run_warmup_fleet(pool, backend="python", faults=model)
        assert (a.leaders, a.states, a.total_pulses, a.rho_cw,
                a.unfinished, a.fault_events) == (
            b.leaders, b.states, b.total_pulses, b.rho_cw,
            b.unfinished, b.fault_events)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shard_replay_fidelity(self, backend):
        # Fault rolls key on the *global* instance index: running row 1
        # of a batch solo at instance_offset=1 must replay its exact
        # fault pattern — this is what makes counterexamples portable.
        model = FaultModel(drop_rate=0.1, duplicate_rate=0.05, seed=13)
        pool = [[3, 1, 4, 2], [2, 4, 1, 3], [4, 3, 2, 1]]
        batch = run_terminating_fleet(pool, backend=backend, fault=model)
        solo = run_terminating_fleet([pool[1]], backend=backend,
                                     fault=model, instance_offset=1)
        assert (batch.leaders[1], batch.states[1], batch.total_pulses[1],
                batch.rho_cw[1], batch.unfinished[1]) == (
            solo.leaders[0], solo.states[0], solo.total_pulses[0],
            solo.rho_cw[0], solo.unfinished[0])

    def test_quiesced_rows_are_frozen_for_faults(self):
        # A batch row that quiesces early must not keep absorbing fault
        # rolls while slower rows finish: its outcome equals its solo run
        # even when a late clause (round-5 restart) fires batch-wide.
        model = FaultModel(crashes=(NodeCrash(node=0, at_round=2,
                                              restart_after=3),))
        fast, slow = [2, 1], [9, 5]  # fast quiesces before the restart
        for backend in BACKENDS:
            batch = run_warmup_fleet([fast, slow], backend=backend,
                                     faults=model)
            solo = run_warmup_fleet([fast], backend=backend, faults=model)
            assert (batch.states[0], batch.rho_cw[0], batch.total_pulses[0]) \
                == (solo.states[0], solo.rho_cw[0], solo.total_pulses[0])


@pytest.mark.skipif(not jit_available(), reason="numba not installed")
class TestThreeWayBitIdentity:
    """python / numpy / compiled must agree column-for-column, faulted or
    not.  Deterministic-clause models exercise the compiled tier's
    documented downgrade seam (it hands those to numpy) — the outward
    result must be identical either way.  Runs only with the ``[jit]``
    extra installed; the same loop bodies run interpreted (without
    numba) in tests/test_compiled_kernels.py."""

    POOL = [[3, 1, 4, 2], [2, 4, 1, 3], [4, 3, 2, 1]]

    @pytest.mark.parametrize("model", [None] + FAULT_MODELS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_terminating(self, model, scheduler):
        results = [
            run_terminating_fleet(self.POOL, backend=backend,
                                  scheduler=scheduler, fault=model)
            for backend in ("python", "numpy", "compiled")
        ]
        keys = [
            (r.leaders, r.states, r.total_pulses, r.rho_cw, r.rho_ccw,
             r.sigma_cw, r.sigma_ccw, r.term_pulse_sent, r.unfinished,
             r.fault_events)
            for r in results
        ]
        assert keys[0] == keys[1] == keys[2]

    @pytest.mark.parametrize("model", [None] + FAULT_MODELS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_warmup(self, model, scheduler):
        results = [
            run_warmup_fleet(self.POOL, backend=backend,
                             scheduler=scheduler, faults=model)
            for backend in ("python", "numpy", "compiled")
        ]
        keys = [
            (r.leaders, r.states, r.total_pulses, r.rho_cw,
             r.unfinished, r.fault_events)
            for r in results
        ]
        assert keys[0] == keys[1] == keys[2]

    @pytest.mark.parametrize("model", [None] + FAULT_MODELS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_nonoriented(self, model, scheduler):
        pool = [[3, 1, 4, 2], [2, 4, 1, 3]]
        flips = [[True, False, False, True], [False, True, True, False]]
        results = [
            run_nonoriented_fleet(pool, flip_lists=flips, backend=backend,
                                  scheduler=scheduler, faults=model)
            for backend in ("python", "numpy", "compiled")
        ]
        keys = [
            (r.leaders, r.states, r.total_pulses, r.rho_cw, r.rho_ccw,
             r.cw_port_labels, r.unfinished, r.fault_events)
            for r in results
        ]
        assert keys[0] == keys[1] == keys[2]


class TestFleetValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            run_terminating_fleet([])

    def test_ragged_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            run_terminating_fleet([[1, 2], [1, 2, 3]])

    def test_duplicate_ids_rejected_for_terminating(self):
        with pytest.raises(ConfigurationError):
            run_terminating_fleet([[3, 3]])

    def test_unknown_backend_and_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            run_terminating_fleet([[1, 2]], backend="gpu")
        with pytest.raises(ConfigurationError):
            run_terminating_fleet([[1, 2]], scheduler="chaotic")


class TestAnalysisIntegration:
    def test_fleet_sweep_equals_scalar_sweep(self):
        fleet = measure_oblivious_over_placements(10, 20, seed=3, fleet=True)
        scalar = measure_oblivious_over_placements(10, 20, seed=3, batched=True)
        assert fleet == scalar

    def test_fleet_whp_equals_scalar_whp(self):
        seeds_ok = TestAnonymousFleet.SMALL_SEEDS
        # Scalar path over the same pre-screened contiguous seed range.
        fleet = run_anonymous_fleet(5, seeds_ok, c=2.0)
        expected = sum(run_anonymous(5, c=2.0, seed=s).succeeded for s in seeds_ok)
        assert sum(fleet.succeeded) == expected

    def test_whp_estimate_shape(self):
        est = measure_anonymous_success(5, 30, c=2.0, seed=0, fleet=True)
        assert est.trials == 30
        assert 0.0 <= est.low <= est.rate <= est.high <= 1.0


class TestParallelSatellite:
    def test_single_worker_never_spawns_a_pool(self, monkeypatch):
        import repro.analysis.parallel as par

        def boom(*args, **kwargs):  # pragma: no cover - must not be reached
            raise AssertionError("ProcessPoolExecutor spawned for serial work")

        monkeypatch.setattr(par, "ProcessPoolExecutor", boom)
        assert par.parallel_map(abs, [-1, -2, -3], processes=1) == [1, 2, 3]
        # Fewer items than one shard per worker: clamp, and a single item
        # short-circuits all the way to the comprehension.
        assert par.parallel_map(abs, [-7], processes=8) == [7]

    def test_worker_clamp_still_parallel_when_enough_items(self):
        assert parallel_map(abs, [-1, -2, -3, -4], processes=2) == [1, 2, 3, 4]

    def test_shard_evenly_balanced(self):
        assert shard_evenly(range(7), 3) == [[0, 1, 2], [3, 4], [5, 6]]
        assert shard_evenly(range(2), 5) == [[0], [1]]
        assert shard_evenly([], 3) == []
        with pytest.raises(ConfigurationError):
            shard_evenly([1], 0)

    def test_shards_reassemble_in_order(self):
        items = list(range(23))
        shards = shard_evenly(items, 4)
        assert [x for shard in shards for x in shard] == items
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1
