"""Section 6: solitude patterns and the message-complexity lower bound."""

import math

import pytest

from repro.core.lower_bound import (
    expected_algorithm2_pattern,
    find_common_prefix_group,
    find_pattern_collision,
    lower_bound_pulses,
    prefix_length,
    solitude_pattern,
    solitude_patterns,
    theorem1_upper_bound,
)
from repro.core.terminating import TerminatingNode, run_terminating
from repro.core.warmup import WarmupNode
from repro.exceptions import ConfigurationError


def algorithm2_factory(node_id: int) -> TerminatingNode:
    return TerminatingNode(node_id)


class TestSolitudePatterns:
    @pytest.mark.parametrize("node_id", [1, 2, 3, 5, 10, 17])
    def test_algorithm2_pattern_closed_form(self, node_id):
        # In solitude, Algorithm 2's node with ID i observes 0^i 1^(i+1).
        assert solitude_pattern(algorithm2_factory, node_id) == (
            expected_algorithm2_pattern(node_id)
        )

    def test_pattern_length_matches_message_complexity(self):
        # On the n=1 ring every sent pulse is received by the node, so
        # the pattern length equals Theorem 1's count 2*ID + 1.
        for node_id in (1, 4, 9):
            assert len(solitude_pattern(algorithm2_factory, node_id)) == (
                2 * node_id + 1
            )

    def test_warmup_pattern_is_all_cw(self):
        # Algorithm 1 in solitude: the node receives exactly ID CW pulses.
        pattern = solitude_pattern(lambda i: WarmupNode(i), 6)
        assert pattern == "0" * 6

    def test_patterns_unique_across_id_universe(self):
        # Lemma 22: correct algorithms have collision-free patterns.
        patterns = solitude_patterns(algorithm2_factory, range(1, 65))
        assert find_pattern_collision(patterns) is None

    def test_collision_finder_detects_collisions(self):
        assert find_pattern_collision({1: "0011", 2: "0100", 3: "0011"}) == (1, 3)
        assert find_pattern_collision({1: "0", 2: "1"}) is None


class TestPigeonholeConstruction:
    """Corollary 24 made executable."""

    def test_prefix_length_formula(self):
        assert prefix_length(32, 4) == 3
        assert prefix_length(16, 16) == 0
        assert prefix_length(1024, 2) == 9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            prefix_length(3, 5)

    @pytest.mark.parametrize("k,n", [(16, 2), (32, 4), (64, 8), (40, 5)])
    def test_group_shares_guaranteed_prefix(self, k, n):
        patterns = solitude_patterns(algorithm2_factory, range(1, k + 1))
        group, prefix = find_common_prefix_group(patterns, n)
        assert len(group) == n
        assert len(prefix) >= prefix_length(k, n)
        for node_id in group:
            assert patterns[node_id].startswith(prefix)

    def test_adversarial_assignment_forces_the_bound(self):
        # Theorem 20's construction, executed: place the prefix-sharing
        # IDs on a ring; the run must send at least n*floor(log2(k/n)).
        k, n = 64, 4
        patterns = solitude_patterns(algorithm2_factory, range(1, k + 1))
        group, _prefix = find_common_prefix_group(patterns, n)
        outcome = run_terminating(group)
        assert outcome.total_pulses >= lower_bound_pulses(n, k)


class TestBoundFormulas:
    def test_lower_bound_values(self):
        assert lower_bound_pulses(4, 64) == 4 * 4
        assert lower_bound_pulses(1, 1024) == 10
        assert lower_bound_pulses(8, 8) == 0

    def test_lower_bound_grows_without_bound_in_idmax(self):
        # "the number of messages in a ring of size n is unbounded"
        n = 2
        values = [lower_bound_pulses(n, 2**exp) for exp in range(2, 12)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_upper_bound_dominates_lower_bound(self):
        for n in (1, 2, 4, 16):
            for id_max in (n, 2 * n, 64 * n, 1024 * n):
                assert theorem1_upper_bound(n, id_max) > lower_bound_pulses(
                    n, id_max
                )

    def test_upper_bound_requires_feasible_idmax(self):
        with pytest.raises(ConfigurationError):
            theorem1_upper_bound(8, 5)

    def test_measured_cost_between_bounds(self):
        # Every actual run of Algorithm 2 sits between Theorem 4's floor
        # (with k = IDmax) and Theorem 1's exact ceiling.
        import random

        rng = random.Random(13)
        for _ in range(10):
            n = rng.randint(1, 10)
            ids = rng.sample(range(1, 300), n)
            outcome = run_terminating(ids)
            assert (
                lower_bound_pulses(n, max(ids))
                <= outcome.total_pulses
                == theorem1_upper_bound(n, max(ids))
            )
