"""Differential tests: explorers vs the live engine, all must agree.

Four independently-implemented executions of the same instance —
unreduced explorer, reduced explorer, per-pulse ``Engine``, batched
``Engine`` — are held to the same terminal facts: node-state
fingerprints, elected leader, and total pulse count.  The explorers
quantify over all schedules, the engine runs sample single schedules, so
every engine run must land inside the explorers' terminal set (and, on
confluent instances, *be* the unique terminal state).

Randomized small rings, both orientations (an oriented ring and its
reversal; flip patterns for Algorithm 3), Algorithms 1–3.
"""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.common import LeaderState
from repro.core.nonoriented import NonOrientedNode, run_nonoriented
from repro.core.terminating import TerminatingNode, run_terminating
from repro.core.warmup import WarmupNode, run_warmup
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.simulator.scheduler import LongestRunScheduler, RandomScheduler
from repro.verification import (
    explore_all_schedules,
    explore_reduced,
    node_fingerprint,
)

from strategies import flipped_rings, small_ring_ids


def both_explorers(factory):
    full = explore_all_schedules(factory)
    reduced = explore_reduced(factory)
    assert set(full.terminal_node_fingerprints) == set(
        reduced.terminal_node_fingerprints
    )
    assert full.confluent == reduced.confluent
    assert sorted(full.terminal_total_sent) == sorted(reduced.terminal_total_sent)
    return reduced


def engine_runs(runner, ids, **kwargs):
    """The same instance under four sampled engine executions."""
    outcomes = [
        runner(ids, batched=False, **kwargs),
        runner(ids, batched=True, **kwargs),
        runner(ids, batched=False, scheduler=RandomScheduler(seed=5), **kwargs),
        runner(
            ids, batched=True, scheduler=LongestRunScheduler(), **kwargs
        ),
    ]
    return outcomes


def assert_engine_agrees(reduced, outcomes):
    for outcome in outcomes:
        fingerprint = node_fingerprint(outcome.nodes)
        assert fingerprint in reduced.terminal_node_fingerprints
        assert outcome.total_pulses in reduced.terminal_total_sent
        if reduced.confluent:
            assert [fingerprint] == reduced.terminal_node_fingerprints
    leaders = {
        tuple(outcome.nodes[i].node_id for i in outcome.leaders)
        for outcome in outcomes
    }
    assert len(leaders) == 1  # every sampled schedule elects the same leader
    return leaders.pop()


@given(small_ring_ids())
def test_warmup_differential(ids):
    for orientation in (list(ids), list(reversed(ids))):
        reduced = both_explorers(
            lambda: build_oriented_ring(
                [WarmupNode(i) for i in orientation]
            ).network
        )
        assert reduced.confluent and reduced.quiescence_violations == 0
        leader = assert_engine_agrees(reduced, engine_runs(run_warmup, orientation))
        assert leader == (max(orientation),)
        assert reduced.terminal_total_sent == [
            len(orientation) * max(orientation)
        ]


@given(small_ring_ids(max_size=3, max_id=5))
def test_terminating_differential(ids):
    for orientation in (list(ids), list(reversed(ids))):
        reduced = both_explorers(
            lambda: build_oriented_ring(
                [TerminatingNode(i) for i in orientation]
            ).network
        )
        assert reduced.confluent and reduced.quiescence_violations == 0
        leader = assert_engine_agrees(
            reduced, engine_runs(run_terminating, orientation)
        )
        assert leader == (max(orientation),)
        assert reduced.terminal_total_sent == [
            len(orientation) * (2 * max(orientation) + 1)
        ]


@given(flipped_rings(max_size=3, max_id=4))
def test_nonoriented_differential(case):
    ids, flips = case
    reduced = both_explorers(
        lambda: build_nonoriented_ring(
            [NonOrientedNode(i) for i in ids], flips=flips
        ).network
    )
    assert reduced.confluent and reduced.quiescence_violations == 0
    leader = assert_engine_agrees(
        reduced, engine_runs(run_nonoriented, ids, flips=flips)
    )
    assert leader == (max(ids),)
    assert reduced.terminal_total_sent == [len(ids) * (2 * max(ids) + 1)]


@pytest.mark.parametrize(
    "ids",
    [[1, 2], [2, 1], [2, 3, 1], [1, 3, 2, 4], [4, 3, 2, 1]],
)
def test_terminating_differential_fixed_instances(ids):
    reduced = both_explorers(
        lambda: build_oriented_ring([TerminatingNode(i) for i in ids]).network
    )
    outcomes = engine_runs(run_terminating, ids)
    assert_engine_agrees(reduced, outcomes)
    for outcome in outcomes:
        assert outcome.nodes[outcome.leaders[0]].state is LeaderState.LEADER
        assert all(node.terminated for node in outcome.nodes)
