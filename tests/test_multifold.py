"""MultiFoldProgram: transports with many user circuits."""

import pytest

from repro.core.composition import run_composed
from repro.defective.simulation import MultiFoldProgram
from repro.defective.transport import run_circuit_transport, transport_pulse_cost
from tests.conftest import SCHEDULER_FACTORIES


def stats_program():
    return MultiFoldProgram(
        [("sum", lambda a, b: a + b), ("max", max), ("min", min)]
    )


class TestStandalone:
    def test_three_folds_one_session(self):
        outcome = run_circuit_transport([3, 1, 4, 1, 5], stats_program())
        assert outcome.outputs == [{"sum": 14, "max": 5, "min": 1}] * 5

    def test_single_fold_degenerates_to_allreduce(self):
        outcome = run_circuit_transport([2, 7, 4], MultiFoldProgram([("max", max)]))
        assert outcome.outputs == [{"max": 7}] * 3

    def test_solo_ring(self):
        outcome = run_circuit_transport([9], stats_program())
        assert outcome.outputs == [{"sum": 9, "max": 9, "min": 9}]

    def test_leader_placement_independent(self):
        for leader in range(4):
            outcome = run_circuit_transport(
                [5, 2, 8, 1], stats_program(), leader=leader
            )
            assert outcome.outputs[0] == {"sum": 16, "max": 8, "min": 1}

    def test_quiescent_termination_leader_last(self):
        outcome = run_circuit_transport([4, 4, 4], stats_program(), leader=1)
        assert outcome.run.quiescently_terminated
        assert outcome.leader_terminated_last

    def test_cost_formula_still_exact(self):
        outcome = run_circuit_transport([3, 1, 4], stats_program())
        schedule = [v for node in outcome.nodes for v in node.values_sent]
        assert outcome.total_pulses == transport_pulse_cost(3, schedule)

    def test_empty_folds_rejected(self):
        with pytest.raises(ValueError):
            MultiFoldProgram([])


class TestComposed:
    def test_full_stack_stats(self):
        outcome = run_composed(
            [9, 2, 7], [4, 8, 1],
            MultiFoldProgram([("sum", lambda a, b: a + b), ("max", max)]),
        )
        assert outcome.outputs == [{"sum": 13, "max": 8}] * 3
        assert outcome.run.quiescently_terminated

    def test_schedule_invariance(self):
        results = set()
        for factory in SCHEDULER_FACTORIES.values():
            outcome = run_composed(
                [9, 2, 7], [4, 8, 1],
                MultiFoldProgram([("sum", lambda a, b: a + b)]),
                scheduler=factory(),
            )
            results.add(outcome.outputs[0]["sum"])
        assert results == {13}
