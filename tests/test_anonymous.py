"""Theorem 3 / Proposition 19 (Section 5): anonymous rings.

The anonymous pipeline = Algorithm 4 sampling + Algorithm 3.  Success is
a probabilistic event, so the tests split the claim into:

* a deterministic reduction — the election succeeds *iff* the maximal
  sampled ID is unique (Lemma 16) — verified by real elections;
* a statistical claim — the maximal ID *is* unique w.h.p. (Lemma 18) —
  verified over cheap sampling-only trials (see test_ids_sampling.py).

A practical caveat drives the test structure: the sampled IDs have a
geometric tail, so ``E[IDmax]`` is *infinite* (the paper's complexity is
polynomial w.h.p., not in expectation).  Tests that execute real
elections therefore pre-screen seeds by ID magnitude — mirroring
``run_anonymous``'s sampling exactly — to keep runtimes bounded without
biasing the *deterministic* claims they check.
"""

import random

import pytest

from repro.analysis.stats import estimate_success_rate
from repro.core.anonymous import run_anonymous, run_prop19
from repro.exceptions import ConfigurationError
from repro.ids.sampling import GeometricIdSampler, max_is_unique


def presample(n: int, c: float, seed: int):
    """Reproduce exactly the IDs `run_anonymous(n, c, seed)` will draw."""
    rng = random.Random(seed)
    return GeometricIdSampler(c=c).sample_many(n, rng)


def tractable_seeds(n: int, c: float, seeds, cap: int = 4000):
    """Seeds whose sampled IDmax keeps the election affordably small."""
    return [seed for seed in seeds if max(presample(n, c, seed)) <= cap]


class TestSingleRuns:
    def test_reproducible_given_seed(self):
        a = run_anonymous(10, c=2.0, seed=123)
        b = run_anonymous(10, c=2.0, seed=123)
        assert a.sampled_ids == b.sampled_ids
        assert a.succeeded == b.succeeded

    def test_presample_matches_run(self):
        outcome = run_anonymous(9, c=2.0, seed=77)
        assert outcome.sampled_ids == presample(9, 2.0, 77)

    def test_nodes_never_terminate(self):
        # Itai-Rodeh: terminating anonymous election is impossible; the
        # pipeline only stabilizes.
        outcome = run_anonymous(6, c=2.0, seed=3)
        assert not any(outcome.election.run.terminated)
        assert outcome.election.run.quiescent

    def test_single_anonymous_node(self):
        outcome = run_anonymous(1, c=2.0, seed=9)
        assert outcome.succeeded
        assert outcome.election.leaders == [0]


class TestLemma16Reduction:
    """Success of the pipeline <=> uniqueness of the sampled maximum."""

    @pytest.mark.parametrize("n,c", [(6, 1.0), (12, 1.0), (8, 2.0)])
    def test_success_iff_max_unique(self, n, c):
        seeds = tractable_seeds(n, c, range(120))[:40]
        assert len(seeds) >= 10  # the cap must not starve the test
        for seed in seeds:
            outcome = run_anonymous(n, c=c, seed=seed)
            assert outcome.succeeded == outcome.max_unique, seed

    def test_success_implies_leader_holds_max(self):
        for seed in tractable_seeds(12, 1.0, range(80))[:25]:
            outcome = run_anonymous(12, c=1.0, seed=seed)
            if outcome.succeeded:
                assert outcome.leader_holds_max_id
                assert outcome.election.orientation_consistent


class TestSuccessRates:
    def test_election_success_rate_is_high(self):
        # Real elections at modest parameters: the success rate must be
        # well above 1/2 (the paper promises 1 - O(n^-c)).
        seeds = tractable_seeds(8, 1.5, range(200))[:80]
        estimate = estimate_success_rate(
            lambda seed: run_anonymous(8, c=1.5, seed=seed).succeeded,
            seeds=seeds,
        )
        assert estimate.rate > 0.7, estimate

    def test_sampling_level_rate_grows_with_c(self):
        # Rate comparison needs no elections: success == max uniqueness.
        def unique_rate(c: float) -> float:
            wins = sum(
                1
                for seed in range(400)
                if max_is_unique(presample(10, c, seed))
            )
            return wins / 400

        assert unique_rate(4.0) >= unique_rate(0.5)


class TestFailureModes:
    def test_failures_are_exactly_max_collisions(self):
        # Whenever the pipeline fails, the sampled maximum was duplicated.
        failures = 0
        checked = 0
        for seed in tractable_seeds(6, 0.5, range(150), cap=500)[:60]:
            outcome = run_anonymous(6, c=0.5, seed=seed)
            checked += 1
            if not outcome.succeeded:
                failures += 1
                assert not outcome.max_unique, seed
        assert checked >= 30
        assert failures > 0, "expected some collisions at c=0.5, n=6"


class TestProposition19:
    def test_output_ids_positive(self):
        outcome = run_prop19(8, c=1.0, seed=1)
        assert all(output_id >= 1 for output_id in outcome.output_ids)

    def test_resampling_keeps_ids_below_min_counter(self):
        for seed in (2, 5, 9):
            outcome = run_prop19(8, c=1.0, seed=seed)
            for node in outcome.election.nodes:
                if node.resample_count:
                    assert node.output_id < min(node.rho)

    def test_high_id_space_assignment_is_mostly_distinct(self):
        # Prop 19's collision probability shrinks with the ID space
        # (~n^2 / IDmax); pick seeds with a comfortably large maximum.
        wins = 0
        trials = 0
        for seed in range(400):
            ids = presample(5, 3.0, seed)
            if not 2000 <= max(ids) <= 60000:
                continue  # need a big-but-affordable ID space
            trials += 1
            if run_prop19(5, c=3.0, seed=seed).ids_distinct:
                wins += 1
            if trials >= 15:
                break
        assert trials >= 5
        assert wins / trials > 0.5

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            run_prop19(0)
