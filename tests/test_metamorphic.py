"""Metamorphic properties of the elections.

Instead of asserting absolute outcomes, these tests transform an
instance in a way with a *known* effect on the result and check the
relation holds:

* **Rotation** — rotating the clockwise ID list relabels positions, not
  the ring: every position-independent observable (leader ID, pulse
  total, each ID's final local state) is invariant.
* **Order-preserving relabeling** — the algorithms only compare IDs
  (via the count-to-my-ID rule), so stretching the ID values while
  preserving their order moves the pulse totals per the formulas but
  leaves the winning *position* and the per-position verdicts alone.
* **Orientation flip (Algorithm 3 dual)** — traversing the same
  physical ring in the opposite direction with all port flips negated
  describes the identical physical system, so every per-node observable
  must agree node-for-node.  The engine builds the two instances with
  different channel numberings, so this doubles as a schedule-invariance
  check.
"""

from __future__ import annotations

from hypothesis import given

from repro.core.common import LeaderState
from repro.core.nonoriented import run_nonoriented
from repro.core.terminating import run_terminating
from repro.core.warmup import run_warmup
from repro.verification import freeze_value, node_state_dict

from strategies import flipped_rings, relabeled_rings, rotated_rings


def _by_id(outcome):
    """Map each node ID to the frozen final local state of its node."""
    return {node.node_id: freeze_value(node_state_dict(node)) for node in outcome.nodes}


def _leader_ids(outcome):
    return sorted(outcome.nodes[index].node_id for index in outcome.leaders)


@given(rotated_rings())
def test_warmup_rotation_invariance(case):
    ids, k = case
    base = run_warmup(ids)
    rotated = run_warmup(ids[k:] + ids[:k])
    assert _leader_ids(base) == _leader_ids(rotated) == [max(ids)]
    assert base.total_pulses == rotated.total_pulses == len(ids) * max(ids)
    assert _by_id(base) == _by_id(rotated)


@given(rotated_rings(max_size=5, max_id=9))
def test_terminating_rotation_invariance(case):
    ids, k = case
    base = run_terminating(ids)
    rotated = run_terminating(ids[k:] + ids[:k])
    assert _leader_ids(base) == _leader_ids(rotated) == [max(ids)]
    assert (
        base.total_pulses
        == rotated.total_pulses
        == len(ids) * (2 * max(ids) + 1)
    )
    assert _by_id(base) == _by_id(rotated)


@given(relabeled_rings())
def test_warmup_relabeling_preserves_verdicts(case):
    ids, relabeled = case
    base = run_warmup(ids)
    stretched = run_warmup(relabeled)
    assert base.leaders == stretched.leaders
    assert base.states == stretched.states
    assert stretched.total_pulses == len(relabeled) * max(relabeled)


@given(relabeled_rings(max_size=5, max_id=8))
def test_terminating_relabeling_preserves_verdicts(case):
    ids, relabeled = case
    base = run_terminating(ids)
    stretched = run_terminating(relabeled)
    assert base.leaders == stretched.leaders
    assert [node.state for node in base.nodes] == [
        node.state for node in stretched.nodes
    ]
    assert stretched.total_pulses == len(relabeled) * (2 * max(relabeled) + 1)


@given(flipped_rings())
def test_nonoriented_orientation_flip_duality(case):
    ids, flips = case
    n = len(ids)
    forward = run_nonoriented(ids, flips=flips)
    # The same physical ring traversed the other way: reversed IDs, all
    # flips negated.  Physical node j of the forward instance is node
    # n-1-j of the dual, with identical local port labels.
    dual = run_nonoriented(
        list(reversed(ids)), flips=[not flip for flip in reversed(flips)]
    )
    assert forward.total_pulses == dual.total_pulses
    assert _leader_ids(forward) == _leader_ids(dual)
    for j in range(n):
        mine, theirs = forward.nodes[j], dual.nodes[n - 1 - j]
        assert mine.node_id == theirs.node_id
        assert mine.rho == theirs.rho
        assert mine.sigma == theirs.sigma
        assert mine.state is theirs.state
        assert mine.cw_port_label == theirs.cw_port_label
    if len(set(ids)) == n and n >= 2:
        assert forward.leaders and forward.states.count(LeaderState.LEADER) == 1
