"""Unit tests for the asynchronous-adversary schedulers."""

import pytest

from repro.simulator.channel import Channel
from repro.simulator.scheduler import (
    AdversarialLagScheduler,
    ChoiceSequenceScheduler,
    GlobalFifoScheduler,
    LifoScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    all_standard_schedulers,
)


def channels_with_heads(*head_seqs):
    """Non-empty channels whose FIFO heads carry the given send seqs."""
    channels = []
    for channel_id, seq in enumerate(head_seqs):
        channel = Channel(channel_id=channel_id, src=(0, 0), dst=(1, 0))
        channel.enqueue(send_seq=seq)
        channels.append(channel)
    return channels


class TestGlobalFifo:
    def test_picks_oldest_send(self):
        channels = channels_with_heads(5, 2, 9)
        assert GlobalFifoScheduler().choose(channels) == 1

    def test_tie_break_by_channel_id(self):
        # Equal send seqs cannot occur in real runs; the tie-break is
        # still deterministic (lower channel id = CW channel first).
        channels = channels_with_heads(4, 4)
        assert GlobalFifoScheduler().choose(channels) == 0

    def test_single_candidate(self):
        channels = channels_with_heads(3)
        assert GlobalFifoScheduler().choose(channels) == 0


class TestLifo:
    def test_picks_newest_send(self):
        channels = channels_with_heads(5, 2, 9)
        assert LifoScheduler().choose(channels) == 2


class TestRandom:
    def test_seeded_reproducibility(self):
        channels = channels_with_heads(1, 2, 3, 4)
        picks_a = [RandomScheduler(seed=42).choose(channels) for _ in range(1)]
        picks_b = [RandomScheduler(seed=42).choose(channels) for _ in range(1)]
        assert picks_a == picks_b

    def test_covers_all_candidates_eventually(self):
        channels = channels_with_heads(1, 2, 3)
        scheduler = RandomScheduler(seed=0)
        picks = {scheduler.choose(channels) for _ in range(200)}
        assert picks == {0, 1, 2}


class TestRoundRobin:
    def test_rotates_across_channels(self):
        channels = channels_with_heads(1, 2, 3)
        scheduler = RoundRobinScheduler()
        picks = [scheduler.choose(channels) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_missing_channels(self):
        all_channels = channels_with_heads(1, 2, 3)
        scheduler = RoundRobinScheduler()
        assert scheduler.choose(all_channels) == 0
        remaining = [all_channels[0], all_channels[2]]  # channel 1 drained
        assert remaining[scheduler.choose(remaining)].channel_id == 2


class TestAdversarialLag:
    def test_starves_lagged_channels_while_others_available(self):
        channels = channels_with_heads(1, 2, 3, 4)  # ids 0..3
        scheduler = AdversarialLagScheduler.lagging_ccw()  # lags odd ids
        chosen = channels[scheduler.choose(channels)]
        assert chosen.channel_id % 2 == 0

    def test_releases_lagged_channel_when_alone(self):
        channel = Channel(channel_id=1, src=(0, 0), dst=(1, 0))
        channel.enqueue(send_seq=7)
        scheduler = AdversarialLagScheduler.lagging_ccw()
        assert scheduler.choose([channel]) == 0

    def test_lag_cw_is_the_mirror(self):
        channels = channels_with_heads(1, 2)
        scheduler = AdversarialLagScheduler.lagging_cw()
        assert channels[scheduler.choose(channels)].channel_id == 1


class TestChoiceSequence:
    def test_follows_explicit_choices_modulo(self):
        channels = channels_with_heads(1, 2, 3)
        scheduler = ChoiceSequenceScheduler([0, 4, 2])
        assert scheduler.choose(channels) == 0
        assert scheduler.choose(channels) == 1  # 4 % 3
        assert scheduler.choose(channels) == 2

    def test_falls_back_to_fifo_when_exhausted(self):
        channels = channels_with_heads(9, 1)
        scheduler = ChoiceSequenceScheduler([])
        assert scheduler.choose(channels) == 1  # oldest send
        assert scheduler.decisions_used == 0

    def test_counts_decisions_used(self):
        channels = channels_with_heads(1, 2)
        scheduler = ChoiceSequenceScheduler([1, 1, 1])
        scheduler.choose(channels)
        scheduler.choose(channels)
        assert scheduler.decisions_used == 2


class TestRegistry:
    def test_all_standard_schedulers_are_fresh_instances(self):
        first = all_standard_schedulers(seed=1)
        second = all_standard_schedulers(seed=1)
        for name in first:
            assert first[name] is not second[name]

    def test_registry_names(self):
        assert set(all_standard_schedulers()) == {
            "global_fifo",
            "lifo",
            "random",
            "round_robin",
            "lag_ccw",
            "lag_cw",
            "longest_run",
        }
