"""Unit and property tests for the unary transport's value codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defective.encoding import (
    cantor_pair,
    cantor_unpair,
    decode_sequence,
    encode_sequence,
    unary_pulse_count,
)
from repro.exceptions import DecodingError


class TestCantorPairing:
    def test_known_values(self):
        assert cantor_pair(0, 0) == 0
        assert cantor_pair(1, 0) == 1
        assert cantor_pair(0, 1) == 2
        assert cantor_pair(2, 0) == 3

    def test_unpair_known_values(self):
        assert cantor_unpair(0) == (0, 0)
        assert cantor_unpair(2) == (0, 1)

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
    def test_roundtrip(self, a, b):
        assert cantor_unpair(cantor_pair(a, b)) == (a, b)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_unpair_then_pair_is_identity(self, z):
        a, b = cantor_unpair(z)
        assert cantor_pair(a, b) == z

    def test_bijectivity_on_a_grid(self):
        seen = set()
        for a in range(40):
            for b in range(40):
                z = cantor_pair(a, b)
                assert z not in seen
                seen.add(z)

    def test_negative_rejected(self):
        with pytest.raises(DecodingError):
            cantor_pair(-1, 0)
        with pytest.raises(DecodingError):
            cantor_unpair(-5)

    def test_bool_rejected(self):
        with pytest.raises(DecodingError):
            cantor_pair(True, 0)


class TestSequenceCodec:
    def test_empty_sequence(self):
        assert encode_sequence([]) == 1  # the bare sentinel bit
        assert decode_sequence(encode_sequence([])) == []

    def test_encoding_stays_compact(self):
        # The gamma codec must not blow up like iterated pairing did:
        # [5, 6, 7] fits comfortably under 2**20 (unary-transmittable).
        assert encode_sequence([5, 6, 7]) < 2**20

    def test_non_sentinel_zero_rejected(self):
        from repro.exceptions import DecodingError

        with pytest.raises(DecodingError):
            decode_sequence(0)

    def test_singleton(self):
        assert decode_sequence(encode_sequence([7])) == [7]

    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=6))
    @settings(max_examples=200)
    def test_roundtrip(self, values):
        assert decode_sequence(encode_sequence(values)) == values

    def test_order_preserved(self):
        assert decode_sequence(encode_sequence([3, 1, 2])) == [3, 1, 2]

    def test_distinct_sequences_encode_distinctly(self):
        seen = {}
        import itertools

        for values in itertools.product(range(4), repeat=3):
            encoded = encode_sequence(list(values))
            assert encoded not in seen, (values, seen[encoded])
            seen[encoded] = values

    def test_negative_item_rejected(self):
        with pytest.raises(DecodingError):
            encode_sequence([1, -2])


class TestUnaryCost:
    def test_zero_is_sendable(self):
        assert unary_pulse_count(0) == 1

    def test_cost_is_value_plus_one(self):
        assert unary_pulse_count(41) == 42

    def test_negative_rejected(self):
        with pytest.raises(DecodingError):
            unary_pulse_count(-1)
