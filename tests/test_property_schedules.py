"""Property-based tests: ∀-schedule and ∀-input quantification via hypothesis.

The paper's theorems are universally quantified over asynchronous
schedules, ID assignments, and port flips.  Hypothesis drives all three:
``ChoiceSequenceScheduler`` turns an arbitrary integer list into a legal
delivery schedule (falling back to FIFO when exhausted, so runs always
finish), and shrinking then yields minimal counterexamples if an
invariant ever breaks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.common import LeaderState
from repro.core.invariants import ALGORITHM1_HOOKS, ALGORITHM2_HOOKS
from repro.core.lower_bound import lower_bound_pulses
from repro.core.nonoriented import IdScheme, run_nonoriented
from repro.core.terminating import TerminatingNode, run_terminating
from repro.core.warmup import WarmupNode, run_warmup
from repro.simulator.engine import Engine
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import ChoiceSequenceScheduler

ids_strategy = st.lists(
    st.integers(min_value=1, max_value=64), min_size=1, max_size=8, unique=True
)
schedule_strategy = st.lists(
    st.integers(min_value=0, max_value=1_000_000), max_size=300
)
flips_strategy = st.lists(st.booleans(), min_size=0, max_size=8)


class TestAlgorithm1Properties:
    @given(ids=ids_strategy, schedule=schedule_strategy)
    @settings(max_examples=120, deadline=None)
    def test_warmup_outcome_schedule_invariant(self, ids, schedule):
        outcome = run_warmup(ids, scheduler=ChoiceSequenceScheduler(schedule))
        expected = max(range(len(ids)), key=lambda i: ids[i])
        assert outcome.leaders == [expected]
        assert outcome.total_pulses == len(ids) * max(ids)

    @given(ids=ids_strategy, schedule=schedule_strategy)
    @settings(max_examples=60, deadline=None)
    def test_warmup_invariants_along_arbitrary_schedules(self, ids, schedule):
        nodes = [WarmupNode(node_id) for node_id in ids]
        topology = build_oriented_ring(nodes)
        engine = Engine(
            topology.network,
            scheduler=ChoiceSequenceScheduler(schedule),
            invariant_hooks=ALGORITHM1_HOOKS,
        )
        engine.run()  # hooks raise on any Lemma 6/12/14 violation


class TestAlgorithm2Properties:
    @given(ids=ids_strategy, schedule=schedule_strategy)
    @settings(max_examples=120, deadline=None)
    def test_theorem1_under_arbitrary_schedules(self, ids, schedule):
        outcome = run_terminating(ids, scheduler=ChoiceSequenceScheduler(schedule))
        expected = max(range(len(ids)), key=lambda i: ids[i])
        assert outcome.leaders == [expected]
        assert outcome.total_pulses == len(ids) * (2 * max(ids) + 1)
        assert outcome.run.quiescently_terminated
        assert outcome.run.termination_order[-1] == expected

    @given(ids=ids_strategy, schedule=schedule_strategy)
    @settings(max_examples=60, deadline=None)
    def test_algorithm2_invariants_along_arbitrary_schedules(self, ids, schedule):
        nodes = [TerminatingNode(node_id) for node_id in ids]
        topology = build_oriented_ring(nodes)
        engine = Engine(
            topology.network,
            scheduler=ChoiceSequenceScheduler(schedule),
            invariant_hooks=ALGORITHM2_HOOKS,
        )
        result = engine.run()
        assert result.quiescently_terminated

    @given(ids=ids_strategy, schedule=schedule_strategy)
    @settings(max_examples=60, deadline=None)
    def test_cost_always_between_bounds(self, ids, schedule):
        outcome = run_terminating(ids, scheduler=ChoiceSequenceScheduler(schedule))
        n, id_max = len(ids), max(ids)
        assert lower_bound_pulses(n, id_max) <= outcome.total_pulses


class TestAlgorithm3Properties:
    @given(ids=ids_strategy, flips=flips_strategy, schedule=schedule_strategy)
    @settings(max_examples=100, deadline=None)
    def test_theorem2_under_arbitrary_flips_and_schedules(
        self, ids, flips, schedule
    ):
        flips = (flips + [False] * len(ids))[: len(ids)]
        outcome = run_nonoriented(
            ids,
            flips=flips,
            scheme=IdScheme.SUCCESSOR,
            scheduler=ChoiceSequenceScheduler(schedule),
        )
        expected = max(range(len(ids)), key=lambda i: ids[i])
        assert outcome.leaders == [expected]
        assert outcome.orientation_consistent
        assert outcome.total_pulses == len(ids) * (2 * max(ids) + 1)

    @given(ids=ids_strategy, flips=flips_strategy, schedule=schedule_strategy)
    @settings(max_examples=40, deadline=None)
    def test_proposition15_scheme_too(self, ids, flips, schedule):
        flips = (flips + [False] * len(ids))[: len(ids)]
        outcome = run_nonoriented(
            ids,
            flips=flips,
            scheme=IdScheme.DOUBLED,
            scheduler=ChoiceSequenceScheduler(schedule),
        )
        assert len(outcome.leaders) == 1
        assert outcome.total_pulses == len(ids) * (4 * max(ids) - 1)


class TestCompositionProperties:
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=40),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=2,
            max_size=6,
        ),
        schedule=schedule_strategy,
    )
    @settings(max_examples=40, deadline=None)
    def test_composed_sum_under_arbitrary_schedules(self, data, schedule):
        ids = [node_id for node_id, _ in data]
        if len(set(ids)) != len(ids):
            return  # composition requires unique IDs
        inputs = [value for _, value in data]
        from repro.core.composition import run_composed
        from repro.defective.simulation import AllReduceProgram

        outcome = run_composed(
            ids,
            inputs,
            AllReduceProgram(lambda a, b: a + b),
            scheduler=ChoiceSequenceScheduler(schedule),
        )
        assert outcome.outputs == [sum(inputs)] * len(ids)
        assert outcome.run.quiescently_terminated
