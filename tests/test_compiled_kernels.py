"""Bit-identity battery for the compiled (numba-JIT) fleet tier.

:mod:`repro.core.kernels.compiled` keeps every ``@njit`` body plain
Python, so the exact code numba compiles also runs *interpreted* — this
battery therefore exercises the compiled tier's loops, hash twins, and
fleet glue even on installs without numba (like CI's tier-1 matrix),
while the ``jit-smoke`` CI job runs the same tests with numba actually
compiling them.

Three layers are pinned against the pure-Python oracle:

* the counter-hash twins — ``_roll`` vs :func:`repro.faults.model.roll_u64`
  and ``_sched_hit`` vs :func:`repro.simulator.fleet.schedule_bit`,
  cross-checked value-for-value over hypothesis-generated coordinates;
* the wrapper entry points — rejected deterministic clauses, the
  round-limit error, warm-up accounting;
* the fleet dispatch glue — ``backend="auto"`` forced onto the compiled
  tier must match the python and numpy backends field-for-field on all
  three algorithms, both schedulers, fault-free and under rate faults
  (with bursts), including shard replay at an ``instance_offset``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import (
    BACKEND_CHOICES,
    HAVE_NUMPY,
    jit_available,
    maybe_warm_compiled,
    np,
    pin_jit_cache,
    resolve_backend,
)
from repro.exceptions import ConfigurationError, SimulationLimitExceeded
from repro.faults.model import (
    KIND_DROP,
    KIND_DUPLICATE,
    KIND_SPURIOUS,
    FaultBurst,
    FaultModel,
    NodeCrash,
    PulseDrop,
    StateCorruption,
    mix64,
    roll_u64,
)
from repro.simulator import fleet
from repro.simulator.fleet import (
    run_anonymous_fleet,
    run_nonoriented_fleet,
    run_terminating_fleet,
    run_warmup_fleet,
    schedule_bit,
)

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the compiled tier rides on numpy arrays"
)

if HAVE_NUMPY:
    from repro.core.kernels import compiled

SCHEDULERS = ["lockstep", "seeded"]

#: Rate-only fault models — the clause shapes the JIT loop hosts itself
#: (deterministic clauses take the documented numpy fallback instead).
RATE_MODELS = [
    FaultModel(drop_rate=0.2, seed=11),
    FaultModel(duplicate_rate=0.15, spurious_rate=0.1, seed=7),
    FaultModel(drop_rate=0.15, duplicate_rate=0.1, spurious_rate=0.05,
               seed=5, burst=FaultBurst(start=2, length=6)),
    FaultModel(drop_rate=1.0, seed=3, burst=FaultBurst(start=3, length=1)),
]


@pytest.fixture
def force_compiled(monkeypatch):
    """Route ``backend="auto"`` through the compiled glue.

    Without numba the registry would resolve auto → numpy; forcing the
    resolver makes the fleet run the compiled module's loops interpreted
    — the same statements numba would compile — so the glue and loop
    bodies are covered on every install.
    """
    original = fleet._resolve_backend
    monkeypatch.setattr(
        fleet,
        "_resolve_backend",
        lambda backend: "compiled" if backend == "auto" else original(backend),
    )


# -- the counter-hash twins, value for value --------------------------------


class TestHashTwins:
    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**64 - 1),
        kind=st.sampled_from([KIND_DROP, KIND_DUPLICATE, KIND_SPURIOUS]),
        instance=st.integers(min_value=0, max_value=2**32),
        round_index=st.integers(min_value=0, max_value=2**32),
        channel=st.integers(min_value=0, max_value=2**20),
        pulse=st.integers(min_value=0, max_value=2**20),
    )
    def test_roll_u64(self, seed, kind, instance, round_index, channel, pulse):
        expected = roll_u64(seed, kind, instance, round_index, channel, pulse)
        with np.errstate(over="ignore"):
            got = int(
                compiled._roll(
                    np.uint64(mix64(seed)),
                    np.uint64(kind),
                    np.uint64(instance),
                    np.uint64(round_index),
                    np.uint64(channel),
                    np.uint64(pulse),
                )
            )
        assert got == expected

    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**64 - 1),
        instance=st.integers(min_value=0, max_value=2**32),
        round_index=st.integers(min_value=0, max_value=2**32),
        channel=st.integers(min_value=0, max_value=2**20),
    )
    def test_schedule_bit(self, seed, instance, round_index, channel):
        expected = bool(schedule_bit(seed, instance, round_index, channel))
        with np.errstate(over="ignore"):
            got = bool(
                compiled._sched_hit(
                    np.uint64(mix64(seed)), instance, round_index, channel
                )
            )
        assert got == expected


# -- wrapper-level contracts -------------------------------------------------


class TestWrappers:
    def test_deterministic_clauses_rejected(self):
        for model in [
            FaultModel(drops=(PulseDrop(round_index=1, node=0),)),
            FaultModel(crashes=(NodeCrash(node=0, at_round=2),)),
            FaultModel(corruptions=(StateCorruption(node=0, at_round=2,
                                                    field="rho_cw", value=1),)),
        ]:
            with pytest.raises(ConfigurationError):
                compiled.warmup_fleet([[2, 1]], +1, "lockstep", 0, 0, 100,
                                      model=model)
            with pytest.raises(ConfigurationError):
                compiled.terminating_fleet([[2, 1]], "lockstep", 0, 100,
                                           model=model)

    def test_round_limit_raises_like_the_oracle(self):
        with pytest.raises(SimulationLimitExceeded, match="exceeded 5 rounds"):
            compiled.terminating_fleet([[100000, 1, 2]], "lockstep", 0, 5)
        with pytest.raises(SimulationLimitExceeded, match="exceeded 5 rounds"):
            compiled.warmup_fleet([[100000, 1, 2]], +1, "seeded", 0, 0, 5)

    def test_certain_rate_lowering(self):
        # rate 1.0's threshold is 2**64, which cannot ride in a uint64 —
        # it must lower to the *_all flag, not silently truncate.
        params = compiled._fault_params(FaultModel(drop_rate=1.0, seed=1))
        has_rates, _seed, _start, _len, t_drop, drop_all = params[:6]
        assert has_rates and drop_all and int(t_drop) == 0

    def test_warm_compiled_accounting(self):
        # Without numba warm-up is free and reports 0.0; with numba the
        # first call pays compilation and repeats are 0.0 (idempotent).
        first = compiled.warm_compiled()
        assert first >= 0.0
        assert compiled.warm_compiled() == 0.0
        if not compiled.HAVE_NUMBA:
            assert first == 0.0


# -- the three-way matrix through the fleet glue ----------------------------


def _assert_fleet_equal(a, b, fields):
    for field in fields:
        assert getattr(a, field) == getattr(b, field), field
    assert a.fault_events == b.fault_events


# ``rounds`` / ``lap_skips`` / ``ignored_deliveries`` are whole-fleet
# *batching* diagnostics: the numpy backend advances the batch in shared
# rounds while python and compiled iterate per instance, so those three
# only agree between the per-instance backends (the dict below adds them
# for the python oracle only); everything else is schedule-invariant and
# must match all backends bit-for-bit.
WARMUP_FIELDS = ["leaders", "states", "total_pulses", "rho_cw", "sigma_cw",
                 "unfinished"]
TERMINATING_FIELDS = ["leaders", "states", "total_pulses", "rho_cw",
                      "rho_ccw", "sigma_cw", "sigma_ccw", "term_pulse_sent",
                      "terminated", "unfinished"]
NONORIENTED_FIELDS = ["leaders", "states", "total_pulses", "rho_cw",
                      "rho_ccw", "sigma_cw", "sigma_ccw", "cw_port_labels",
                      "orientation_consistent", "unfinished"]


def _oracle_fields(oracle, fields):
    """Fields to compare against each oracle: everything above is
    schedule-invariant and must match every backend; ``rounds`` /
    ``lap_skips`` (and terminating's ``ignored_deliveries``) depend on
    the *batching*, which only the per-instance python oracle shares
    with the compiled tier."""
    if oracle != "python":
        return fields
    extra = ["rounds", "lap_skips"]
    if fields is TERMINATING_FIELDS:
        extra.append("ignored_deliveries")
    return fields + extra

POOL = [[5, 9, 2, 7], [3, 1, 4, 2], [4, 3, 2, 1]]
FLIPS = [[True, False, False, True], [False, True, True, False],
         [False, False, True, True]]


@pytest.mark.usefixtures("force_compiled")
@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("model", [None] + RATE_MODELS, ids=str)
class TestCompiledMatchesOracles:
    def test_warmup(self, scheduler, model):
        got = run_warmup_fleet(POOL, backend="auto", scheduler=scheduler,
                               faults=model, instance_offset=3)
        assert got.backend == "compiled"
        for oracle in ("python", "numpy"):
            want = run_warmup_fleet(POOL, backend=oracle, scheduler=scheduler,
                                    faults=model, instance_offset=3)
            _assert_fleet_equal(got, want, _oracle_fields(oracle, WARMUP_FIELDS))

    def test_terminating(self, scheduler, model):
        got = run_terminating_fleet(POOL, backend="auto", scheduler=scheduler,
                                    fault=model, instance_offset=3)
        assert got.backend == "compiled"
        for oracle in ("python", "numpy"):
            want = run_terminating_fleet(POOL, backend=oracle,
                                         scheduler=scheduler, fault=model,
                                         instance_offset=3)
            _assert_fleet_equal(got, want,
                                _oracle_fields(oracle, TERMINATING_FIELDS))

    def test_nonoriented(self, scheduler, model):
        got = run_nonoriented_fleet(POOL, flip_lists=FLIPS, backend="auto",
                                    scheduler=scheduler, faults=model,
                                    instance_offset=3)
        assert got.backend == "compiled"
        for oracle in ("python", "numpy"):
            want = run_nonoriented_fleet(POOL, flip_lists=FLIPS,
                                         backend=oracle, scheduler=scheduler,
                                         faults=model, instance_offset=3)
            _assert_fleet_equal(got, want,
                                _oracle_fields(oracle, NONORIENTED_FIELDS))


@pytest.mark.usefixtures("force_compiled")
class TestCompiledGlue:
    def test_shard_replay_fidelity(self):
        # Fault rolls key on the global instance index: row 1 of a batch
        # rerun solo at instance_offset=1 replays its exact fault stream.
        model = FaultModel(drop_rate=0.1, duplicate_rate=0.05, seed=13)
        batch = run_terminating_fleet(POOL, backend="auto", fault=model)
        solo = run_terminating_fleet([POOL[1]], backend="auto", fault=model,
                                     instance_offset=1)
        assert batch.backend == solo.backend == "compiled"
        assert (batch.leaders[1], batch.states[1], batch.total_pulses[1],
                batch.rho_cw[1], batch.unfinished[1]) == (
            solo.leaders[0], solo.states[0], solo.total_pulses[0],
            solo.rho_cw[0], solo.unfinished[0])

    def test_watchdog_matches_python(self):
        model = FaultModel(spurious_rate=0.9, seed=3)
        a = run_warmup_fleet([[3, 1, 2]], backend="auto", faults=model,
                             watchdog_rounds=50)
        b = run_warmup_fleet([[3, 1, 2]], backend="python", faults=model,
                             watchdog_rounds=50)
        assert a.backend == "compiled"
        assert a.unfinished == b.unfinished == [True]
        _assert_fleet_equal(a, b, WARMUP_FIELDS)

    def test_anonymous_pipeline(self):
        a = run_anonymous_fleet(5, seeds=range(12), backend="auto")
        b = run_anonymous_fleet(5, seeds=range(12), backend="python")
        assert a.election.backend == "compiled"
        assert a.sampled_ids == b.sampled_ids
        assert a.succeeded == b.succeeded
        assert a.election.total_pulses == b.election.total_pulses

    def test_observer_falls_back_to_numpy(self):
        rounds = []
        result = run_warmup_fleet([[3, 1, 2]], backend="auto",
                                  observer=lambda v: rounds.append(v.round_index))
        assert result.backend == "numpy"
        assert rounds  # the observer actually fired

    def test_deterministic_clause_falls_back_to_numpy(self):
        model = FaultModel(drops=(PulseDrop(round_index=2, node=1),))
        result = run_terminating_fleet([[3, 1, 2]], backend="auto",
                                       fault=model)
        assert result.backend == "numpy"
        want = run_terminating_fleet([[3, 1, 2]], backend="python",
                                     fault=model)
        _assert_fleet_equal(result, want, TERMINATING_FIELDS)

    def test_recovery_check_runs_compiled(self):
        # The recovery harness passes no observer, so its fleet blocks
        # genuinely run on the compiled tier (unlike the invariant
        # checker, whose per-round observer takes the numpy fallback).
        # The forced dispatch routes the blocks through the compiled
        # glue here; the report label comes from the shared registry.
        from repro.verification.statistical import run_recovery_check

        report = run_recovery_check(
            algorithm="terminating", n=4, id_max=30, samples=12,
            faults=FaultModel(drop_rate=0.05, seed=2), block_size=8,
        )
        assert report.backend == resolve_backend("auto")
        assert report.recovered + report.wrong_stable + report.stuck == 12


# -- the shared backend registry --------------------------------------------


class TestBackendRegistry:
    def test_auto_matches_availability(self):
        resolved = resolve_backend("auto")
        if jit_available():
            assert resolved == "compiled"
        elif HAVE_NUMPY:
            assert resolved == "numpy"
        else:
            assert resolved == "python"

    def test_jit_available_reflects_module_flag(self):
        assert jit_available() == compiled.HAVE_NUMBA

    def test_env_var_pins_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve_backend("auto") == "python"
        monkeypatch.setenv("REPRO_BACKEND", "plasma")
        with pytest.raises(ConfigurationError, match="REPRO_BACKEND"):
            resolve_backend("auto")

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve_backend("numpy") == "numpy"

    def test_unavailable_compiled_pin_raises_with_hint(self):
        if jit_available():
            pytest.skip("numba installed; the pin succeeds here")
        with pytest.raises(ConfigurationError, match=r"\[jit\]"):
            resolve_backend("compiled")

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ConfigurationError, match="compiled"):
            resolve_backend("gpu")
        assert BACKEND_CHOICES == ("auto", "compiled", "numpy", "python")

    def test_maybe_warm_is_quiet_when_not_compiled(self):
        assert maybe_warm_compiled("python") == 0.0
        if not jit_available():
            assert maybe_warm_compiled("compiled") == 0.0

    def test_pin_jit_cache_respects_preset(self, monkeypatch, tmp_path):
        monkeypatch.setenv("NUMBA_CACHE_DIR", str(tmp_path))
        assert pin_jit_cache() == str(tmp_path)

    def test_pin_jit_cache_lands_in_build_dir(self, monkeypatch):
        monkeypatch.delenv("NUMBA_CACHE_DIR", raising=False)
        pinned = pin_jit_cache()
        assert pinned is not None and pinned.endswith("numba_cache")
