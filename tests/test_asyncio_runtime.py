"""The asyncio backend: same nodes, real concurrency, same guarantees."""

import pytest

from repro.asyncio_runtime import run_network_asyncio
from repro.core.common import LeaderState
from repro.core.nonoriented import IdScheme, NonOrientedNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.defective.simulation import AllReduceProgram
from repro.defective.transport import CircuitNode
from repro.exceptions import SimulationLimitExceeded
from repro.simulator.node import Node, PORT_ONE
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring


class TestWarmupUnderAsyncio:
    def test_leader_and_exact_count(self):
        ids = [3, 8, 5]
        nodes = [WarmupNode(node_id) for node_id in ids]
        topology = build_oriented_ring(nodes)
        result = run_network_asyncio(topology.network, seed=1)
        assert result.quiescent
        assert result.total_sent == 3 * 8
        assert [node.state for node in nodes] == [
            LeaderState.NON_LEADER,
            LeaderState.LEADER,
            LeaderState.NON_LEADER,
        ]


class TestTerminatingUnderAsyncio:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_theorem1_holds_under_real_concurrency(self, seed):
        ids = [3, 9, 4, 7, 1]
        nodes = [TerminatingNode(node_id) for node_id in ids]
        topology = build_oriented_ring(nodes)
        result = run_network_asyncio(topology.network, seed=seed, max_delay=0.0005)
        assert result.all_terminated
        assert result.total_sent == 5 * (2 * 9 + 1)
        assert result.ignored_deliveries == 0  # quiescent termination
        assert result.termination_order[-1] == 1  # leader (ID 9) last
        assert result.outputs[1] is LeaderState.LEADER
        assert result.outputs.count(LeaderState.LEADER) == 1

    def test_zero_delay_fast_path(self):
        ids = [2, 6, 4]
        nodes = [TerminatingNode(node_id) for node_id in ids]
        topology = build_oriented_ring(nodes)
        result = run_network_asyncio(topology.network, seed=0, max_delay=0.0)
        assert result.total_sent == 3 * 13


class TestNonOrientedUnderAsyncio:
    @pytest.mark.parametrize("seed", [10, 11])
    def test_theorem2_holds(self, seed):
        ids = [3, 9, 4, 7, 1]
        flips = [True, False, False, True, True]
        nodes = [NonOrientedNode(node_id, scheme=IdScheme.SUCCESSOR) for node_id in ids]
        topology = build_nonoriented_ring(nodes, flips=flips)
        result = run_network_asyncio(topology.network, seed=seed, max_delay=0.0005)
        assert result.total_sent == 5 * (2 * 9 + 1)
        leaders = [
            index for index, node in enumerate(nodes) if node.state is LeaderState.LEADER
        ]
        assert leaders == [1]


class TestTransportUnderAsyncio:
    def test_allreduce_sum(self):
        inputs = [3, 1, 4, 1]
        program = AllReduceProgram(lambda a, b: a + b)
        nodes = [
            CircuitNode(is_leader=(index == 0), input_value=value, program=program)
            for index, value in enumerate(inputs)
        ]
        topology = build_oriented_ring(nodes)
        result = run_network_asyncio(topology.network, seed=4, max_delay=0.0005)
        assert result.outputs == [9, 9, 9, 9]
        assert result.all_terminated
        assert result.ignored_deliveries == 0


class TestUniversalUnderAsyncio:
    def test_simulated_chang_roberts_same_result(self):
        from repro.defective.ring_algorithms import SimChangRoberts
        from repro.defective.universal import UniversalNode

        ids = [3, 7, 5]
        nodes = [
            UniversalNode(is_leader=(index == 0), simulated=SimChangRoberts(node_id))
            for index, node_id in enumerate(ids)
        ]
        topology = build_oriented_ring(nodes)
        result = run_network_asyncio(topology.network, seed=6, max_delay=0.0002)
        assert result.all_terminated
        assert [node.sim_output for node in nodes] == [
            ("follower", 7),
            ("leader", 7),
            ("follower", 7),
        ]
        assert result.ignored_deliveries == 0


class TestBackendAgreement:
    """Discrete-event engine and asyncio backend must agree exactly."""

    def test_same_outputs_and_counts(self):
        from repro.simulator.engine import Engine

        ids = [5, 11, 2, 8]

        nodes_a = [TerminatingNode(node_id) for node_id in ids]
        result_a = Engine(build_oriented_ring(nodes_a).network).run()

        nodes_b = [TerminatingNode(node_id) for node_id in ids]
        result_b = run_network_asyncio(
            build_oriented_ring(nodes_b).network, seed=3, max_delay=0.0003
        )

        assert result_a.outputs == result_b.outputs
        assert result_a.total_sent == result_b.total_sent
        assert result_a.termination_order[-1] == result_b.termination_order[-1]


class TestLivelockDetection:
    def test_timeout_raises(self):
        class PingPongForever(Node):
            def on_init(self, api):
                api.send(PORT_ONE)

            def on_message(self, api, port, content):
                api.send(PORT_ONE)

        nodes = [PingPongForever(), PingPongForever()]
        topology = build_oriented_ring(nodes)
        with pytest.raises(SimulationLimitExceeded):
            run_network_asyncio(topology.network, seed=0, max_delay=0.001, timeout=0.3)
