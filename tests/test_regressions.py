"""Regression pins for previously-fragile edge cases.

``resolve_processes`` guards every ``processes=`` argument in the
analysis layer, and ``RandomScheduler``'s seeding is what makes
randomized sweeps reproducible across runs and machines; both contracts
are cheap to pin and expensive to rediscover.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.parallel import resolve_processes
from repro.core.terminating import run_terminating
from repro.exceptions import ConfigurationError
from repro.simulator.scheduler import RandomScheduler
from repro.verification import node_fingerprint


class TestResolveProcesses:
    @pytest.mark.parametrize("serial", [None, 0, 1])
    def test_serial_spellings_resolve_to_one(self, serial):
        assert resolve_processes(serial) == 1

    def test_auto_is_at_least_one(self):
        resolved = resolve_processes("auto")
        assert resolved >= 1
        assert resolved == max(os.cpu_count() or 1, 1)

    @pytest.mark.parametrize("count", [2, 7, 64])
    def test_positive_ints_are_literal(self, count):
        assert resolve_processes(count) == count

    @pytest.mark.parametrize("value", [True, False])
    def test_bools_are_rejected(self, value):
        # bool is an int subclass; accepting True as "1 worker" would
        # silently mask a caller bug.
        with pytest.raises(ConfigurationError):
            resolve_processes(value)

    @pytest.mark.parametrize("value", [-1, -8])
    def test_negative_counts_are_rejected(self, value):
        with pytest.raises(ConfigurationError):
            resolve_processes(value)

    @pytest.mark.parametrize("value", ["three", "AUTO", 2.5, [2]])
    def test_other_junk_is_rejected(self, value):
        with pytest.raises(ConfigurationError):
            resolve_processes(value)


class TestRandomSchedulerReproducibility:
    def test_same_seed_same_choice_sequence(self):
        # choose() only inspects the candidate count, so a synthetic
        # candidate list drives the stream directly.
        first = RandomScheduler(seed=42)
        second = RandomScheduler(seed=42)
        candidates = [object()] * 7
        stream_a = [first.choose(candidates) for _ in range(200)]
        stream_b = [second.choose(candidates) for _ in range(200)]
        assert stream_a == stream_b

    def test_same_seed_same_execution(self):
        ids = [4, 1, 3, 2]
        runs = [
            run_terminating(ids, scheduler=RandomScheduler(seed=9))
            for _ in range(2)
        ]
        assert runs[0].run.steps == runs[1].run.steps
        assert node_fingerprint(runs[0].nodes) == node_fingerprint(
            runs[1].nodes
        )
        assert (
            runs[0].run.termination_order == runs[1].run.termination_order
        )

    def test_distinct_seeds_reach_the_same_verdict(self):
        # Different seeds may take different schedules, but confluence
        # (Theorem 1) forces identical terminal facts.
        ids = [2, 5, 1, 4]
        outcomes = [
            run_terminating(ids, scheduler=RandomScheduler(seed=seed))
            for seed in range(6)
        ]
        fingerprints = {node_fingerprint(out.nodes) for out in outcomes}
        assert len(fingerprints) == 1
        assert {out.total_pulses for out in outcomes} == {
            len(ids) * (2 * max(ids) + 1)
        }
