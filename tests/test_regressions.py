"""Regression pins for previously-fragile edge cases.

``resolve_processes`` guards every ``processes=`` argument in the
analysis layer, and ``RandomScheduler``'s seeding is what makes
randomized sweeps reproducible across runs and machines; both contracts
are cheap to pin and expensive to rediscover.  The counter-stream
battery pins the fix for the last silent entropy escape hatches: entry
points whose ``seed=None`` default used to reach ``os.urandom`` via an
unseeded ``random.Random()`` now draw from :mod:`repro.determinism`'s
counter streams, so two fresh processes replay identical defaults —
the property the sweep farm's content-addressed cache leans on.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.parallel import resolve_processes
from repro.core.terminating import run_terminating
from repro.determinism import (
    STREAM_ANONYMOUS,
    STREAM_ID_SAMPLING,
    STREAM_RING_FLIPS,
    counter_rng,
    counter_seed,
    reset_streams,
)
from repro.exceptions import ConfigurationError
from repro.simulator.scheduler import RandomScheduler
from repro.verification import node_fingerprint


class TestResolveProcesses:
    @pytest.mark.parametrize("serial", [None, 0, 1])
    def test_serial_spellings_resolve_to_one(self, serial):
        assert resolve_processes(serial) == 1

    def test_auto_is_at_least_one(self):
        resolved = resolve_processes("auto")
        assert resolved >= 1
        assert resolved == max(os.cpu_count() or 1, 1)

    @pytest.mark.parametrize("count", [2, 7, 64])
    def test_positive_ints_are_literal(self, count):
        assert resolve_processes(count) == count

    @pytest.mark.parametrize("value", [True, False])
    def test_bools_are_rejected(self, value):
        # bool is an int subclass; accepting True as "1 worker" would
        # silently mask a caller bug.
        with pytest.raises(ConfigurationError):
            resolve_processes(value)

    @pytest.mark.parametrize("value", [-1, -8])
    def test_negative_counts_are_rejected(self, value):
        with pytest.raises(ConfigurationError):
            resolve_processes(value)

    @pytest.mark.parametrize("value", ["three", "AUTO", 2.5, [2]])
    def test_other_junk_is_rejected(self, value):
        with pytest.raises(ConfigurationError):
            resolve_processes(value)


class TestRandomSchedulerReproducibility:
    def test_same_seed_same_choice_sequence(self):
        # choose() only inspects the candidate count, so a synthetic
        # candidate list drives the stream directly.
        first = RandomScheduler(seed=42)
        second = RandomScheduler(seed=42)
        candidates = [object()] * 7
        stream_a = [first.choose(candidates) for _ in range(200)]
        stream_b = [second.choose(candidates) for _ in range(200)]
        assert stream_a == stream_b

    def test_same_seed_same_execution(self):
        ids = [4, 1, 3, 2]
        runs = [
            run_terminating(ids, scheduler=RandomScheduler(seed=9))
            for _ in range(2)
        ]
        assert runs[0].run.steps == runs[1].run.steps
        assert node_fingerprint(runs[0].nodes) == node_fingerprint(
            runs[1].nodes
        )
        assert (
            runs[0].run.termination_order == runs[1].run.termination_order
        )

    def test_distinct_seeds_reach_the_same_verdict(self):
        # Different seeds may take different schedules, but confluence
        # (Theorem 1) forces identical terminal facts.
        ids = [2, 5, 1, 4]
        outcomes = [
            run_terminating(ids, scheduler=RandomScheduler(seed=seed))
            for seed in range(6)
        ]
        fingerprints = {node_fingerprint(out.nodes) for out in outcomes}
        assert len(fingerprints) == 1
        assert {out.total_pulses for out in outcomes} == {
            len(ids) * (2 * max(ids) + 1)
        }


#: Exercises every formerly urandom-seeded default in one fresh process:
#: ring port flips, Algorithm 4 ID sampling, and the anonymous pipeline.
_DEFAULT_SEED_PROBE = textwrap.dedent(
    """
    import json

    from repro.core.anonymous import run_anonymous, run_prop19
    from repro.ids.sampling import sample_ids
    from repro.simulator.node import Node
    from repro.simulator.ring import build_nonoriented_ring


    class _Probe(Node):
        def on_init(self, api):
            pass

        def on_message(self, api, port, content):
            pass


    out = {
        "flips": [
            list(build_nonoriented_ring([_Probe() for _ in range(16)]).flips)
            for _ in range(3)
        ],
        "ids": [sample_ids(8) for _ in range(3)],
        "anon": [run_anonymous(4).sampled_ids for _ in range(2)],
        "prop19": run_prop19(4).output_ids,
    }
    print(json.dumps(out, sort_keys=True))
    """
)


class TestCounterStreamDefaults:
    """Default-seeded entry points replay bit-for-bit across processes."""

    def _probe(self) -> str:
        src = str(Path(__file__).resolve().parent.parent / "src")
        result = subprocess.run(
            [sys.executable, "-c", _DEFAULT_SEED_PROBE],
            env={**os.environ, "PYTHONPATH": src},
            capture_output=True,
            text=True,
            check=True,
        )
        return result.stdout

    def test_fresh_processes_replay_identical_defaults(self):
        # Two cold interpreters, no seeds anywhere: byte-identical
        # draws.  Before the counter streams this failed with
        # probability ~1 (os.urandom via random.Random()).
        first = self._probe()
        second = self._probe()
        assert first == second
        probe = json.loads(first)
        # ... and the per-process streams actually advance: consecutive
        # default draws differ rather than repeating one value.
        assert probe["flips"][0] != probe["flips"][1]
        assert probe["ids"][0] != probe["ids"][1]

    def test_counter_seed_is_pure_in_stream_and_call_index(self):
        reset_streams()
        try:
            first = [counter_seed(STREAM_RING_FLIPS) for _ in range(5)]
            reset_streams()
            replay = [counter_seed(STREAM_RING_FLIPS) for _ in range(5)]
            assert first == replay
            assert len(set(first)) == 5  # the stream advances per call
        finally:
            reset_streams()

    def test_streams_are_disjoint(self):
        reset_streams()
        try:
            draws = {
                stream: counter_seed(stream)
                for stream in (
                    STREAM_RING_FLIPS,
                    STREAM_ID_SAMPLING,
                    STREAM_ANONYMOUS,
                )
            }
            assert len(set(draws.values())) == 3
        finally:
            reset_streams()

    def test_counter_rng_matches_counter_seed(self):
        import random

        reset_streams()
        try:
            expected_seed = counter_seed(STREAM_ID_SAMPLING)
            reset_streams()
            rng = counter_rng(STREAM_ID_SAMPLING)
            assert rng.random() == random.Random(expected_seed).random()
        finally:
            reset_streams()
