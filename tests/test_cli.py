"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestElect:
    def test_oriented(self, capsys):
        code, out = run_cli(capsys, "elect", "--ids", "3,7,5,2")
        assert code == 0
        assert "leader       : 1" in out
        assert "exact match" in out

    def test_nonoriented_with_flips(self, capsys):
        code, out = run_cli(
            capsys, "elect", "--setting", "nonoriented",
            "--ids", "12,31,7", "--flips", "1,0,1",
        )
        assert code == 0
        assert "cw ports" in out

    def test_anonymous(self, capsys):
        code, out = run_cli(
            capsys, "elect", "--setting", "anonymous",
            "--n", "6", "--c", "2.0", "--seed", "3",
        )
        assert "setting      : anonymous" in out
        assert code in (0, 1)  # probabilistic; exit code reflects success

    def test_scheduler_selection(self, capsys):
        code, out = run_cli(
            capsys, "elect", "--ids", "3,7", "--scheduler", "lifo"
        )
        assert code == 0

    def test_unknown_scheduler_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["elect", "--ids", "3,7", "--scheduler", "bogus"])

    def test_missing_ids_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["elect"])


class TestCompute:
    def test_composed_sum(self, capsys):
        code, out = run_cli(
            capsys, "compute", "--ids", "14,3,27", "--inputs", "18,22,19",
            "--op", "sum",
        )
        assert code == 0
        assert "[59, 59, 59]" in out

    def test_rooted_max(self, capsys):
        code, out = run_cli(
            capsys, "compute", "--inputs", "4,9,2", "--op", "max", "--leader", "1",
        )
        assert code == 0
        assert "[9, 9, 9]" in out

    def test_unknown_op_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["compute", "--inputs", "1,2", "--op", "median"])


class TestSimulate:
    def test_chang_roberts_over_pulses(self, capsys):
        code, out = run_cli(capsys, "simulate", "--ids", "4,9,2")
        assert code == 0
        assert "('leader', 9)" in out

    def test_broadcast(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "--ids", "4,9,2", "--algorithm", "broadcast",
            "--value", "33",
        )
        assert code == 0
        assert "[33, 33, 33]" in out

    def test_sum_with_inputs(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "--ids", "4,9,2", "--algorithm", "sum",
            "--inputs", "1,2,3",
        )
        assert code == 0
        assert "[6, 6, 6]" in out

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--ids", "4,9,2", "--algorithm", "sum",
                  "--inputs", "1,2"])


class TestVerify:
    def test_terminating_instance_verified(self, capsys):
        code, out = run_cli(capsys, "verify", "--ids", "1,2,3")
        assert code == 0
        assert "VERIFIED (all schedules)" in out
        assert "confluent            : True" in out

    def test_warmup_algorithm_option(self, capsys):
        code, out = run_cli(
            capsys, "verify", "--ids", "2,3", "--algorithm", "warmup"
        )
        assert code == 0


class TestSolitude:
    def test_pattern_table(self, capsys):
        code, out = run_cli(capsys, "solitude", "--max-id", "4")
        assert code == 0
        assert "011" in out
        assert "none (Lemma 22 holds)" in out


class TestCompare:
    def test_table_lists_all_algorithms(self, capsys):
        code, out = run_cli(capsys, "compare", "--n", "6", "--spread", "32")
        assert code == 0
        for name in (
            "content-oblivious",
            "chang_roberts",
            "lelann",
            "hirschberg_sinclair",
            "peterson",
            "dolev_klawe_rodeh",
            "theorem 4 floor",
        ):
            assert name in out


class TestTimeline:
    def test_diagram_and_summary(self, capsys):
        code, out = run_cli(capsys, "timeline", "--ids", "2,3")
        assert code == 0
        assert "id2" in out and "id3" in out
        assert "total sent: 14" in out  # 2*(2*3+1)


class TestParsing:
    def test_bad_int_list(self):
        with pytest.raises(SystemExit):
            main(["elect", "--ids", "3,x,5"])


class TestFarm:
    def _submit_args(self, root, *extra):
        return (
            "farm", "submit", "--root", str(root),
            "--workload", "placements", "--n", "5",
            "--total", "40", "--shard-size", "10", *extra,
        )

    def test_submit_status_collect_gc_round_trip(self, capsys, tmp_path):
        code, out = run_cli(capsys, *self._submit_args(tmp_path))
        assert code == 0
        assert "OK: campaign complete" in out
        assert "cache hits=0 computed=4" in out

        code, out = run_cli(
            capsys, "farm", "status", "--root", str(tmp_path)
        )
        assert code == 0
        assert '"complete": true' in out
        assert '"done": 4' in out

        code, first = run_cli(
            capsys, "farm", "collect", "--root", str(tmp_path)
        )
        assert code == 0
        assert first.startswith('{"campaign":')
        assert '"zero_spread":true' in first

        # Warm re-submit: every shard is a cache hit, collect identical.
        code, out = run_cli(
            capsys, *self._submit_args(tmp_path, "--min-hit-rate", "1.0")
        )
        assert code == 0
        assert "cache hits=4 computed=0" in out
        code, second = run_cli(
            capsys, "farm", "collect", "--root", str(tmp_path)
        )
        assert code == 0
        assert second == first

        out_file = tmp_path / "collect.json"
        code, _ = run_cli(
            capsys, "farm", "collect", "--root", str(tmp_path),
            "--out", str(out_file),
        )
        assert code == 0
        assert out_file.read_text() == first

        code, out = run_cli(capsys, "farm", "gc", "--root", str(tmp_path))
        assert code == 0
        assert "farm gc: orphaned_entries=" in out

    def test_min_hit_rate_gate_fails_cold_submit(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, *self._submit_args(tmp_path, "--min-hit-rate", "1.0")
        )
        assert code == 1
        assert "FAIL: cache hit rate 0.0000" in out

    def test_injected_failure_then_resume(self, capsys, tmp_path, monkeypatch):
        from repro.farm.service import INJECT_FAIL_ENV

        monkeypatch.setenv(INJECT_FAIL_ENV, "0")
        code, out = run_cli(capsys, *self._submit_args(tmp_path))
        assert code == 1
        assert "shard 0 failed: injected failure" in out
        assert "FAIL: some shards failed" in out

        code, out = run_cli(
            capsys, "farm", "status", "--root", str(tmp_path)
        )
        assert code == 1  # incomplete campaigns exit nonzero
        assert '"failed": 1' in out

        monkeypatch.delenv(INJECT_FAIL_ENV)
        code, out = run_cli(capsys, *self._submit_args(tmp_path))
        assert code == 0
        assert "cache hits=3 computed=1" in out
        assert "OK: campaign complete" in out

    def test_unknown_campaign_exits_with_message(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["farm", "collect", "--root", str(tmp_path),
                 "--campaign", "last"]
            )

    def test_sweep_routes_through_farm(self, capsys, tmp_path):
        direct_args = (
            "sweep", "--workload", "placements", "--n", "5",
            "--trials", "30", "--seed", "3",
        )
        code, direct = run_cli(capsys, *direct_args)
        assert code == 0
        code, farmed = run_cli(
            capsys, *direct_args, "--farm", str(tmp_path)
        )
        assert code == 0
        assert farmed == direct  # same stats, same OK line
        code, warm = run_cli(
            capsys, *direct_args, "--farm", str(tmp_path)
        )
        assert code == 0
        assert warm == direct
        # The sweep left reusable shards behind.
        assert (tmp_path / "objects").is_dir()

    def test_faults_sweep_routes_through_farm(self, capsys, tmp_path):
        args = (
            "faults", "sweep", "--kind", "drop", "--rates", "0,0.05",
            "--n", "5", "--id-max", "40", "--samples", "24",
        )
        code, direct = run_cli(capsys, *args)
        assert code == 0
        code, farmed = run_cli(capsys, *args, "--farm", str(tmp_path))
        assert code == 0
        # Point-for-point identical curve through the cache.
        assert [
            line for line in farmed.splitlines() if "rate" in line
        ] == [line for line in direct.splitlines() if "rate" in line]


class TestTopology:
    """The --topology surface: ear election, refusal, verification."""

    def test_elect_theta(self, capsys):
        code, out = run_cli(capsys, "elect", "--topology", "theta")
        assert code == 0
        assert "ear (2-edge-connected election)" in out
        assert "leader       : 7" in out
        assert "exact match" in out

    def test_elect_bridge_refused_with_witness(self, capsys):
        code, out = run_cli(capsys, "elect", "--topology", "bridge")
        assert code == 1
        assert "REFUSED" in out
        assert "bridge edge (2, 3)" in out

    def test_elect_explicit_edges(self, capsys):
        code, out = run_cli(
            capsys, "elect", "--topology", "edges:0-1,1-2,2-3,3-0,0-2",
            "--ids", "5,2,9,4",
        )
        assert code == 0
        assert "leader       : 2" in out

    def test_elect_ring_spec(self, capsys):
        code, out = run_cli(capsys, "elect", "--topology", "ring:5")
        assert code == 0
        assert "stride C=1" in out

    def test_bad_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["elect", "--topology", "dodecahedron"])
        # A parseable-but-bridged spec is a refusal, not a parse error.
        code, out = run_cli(capsys, "elect", "--topology", "edges:0-1")
        assert code == 1
        assert "REFUSED" in out

    def test_verify_exhaustive_with_downgrade(self, capsys):
        code, out = run_cli(
            capsys, "verify", "--topology", "theta:0,1,1",
            "--ids", "2,4,1,3", "--reduction", "full",
        )
        assert code == 0
        assert "downgrading to 'sleep' off-ring" in out
        assert "CERTIFIED (all schedules)" in out
        assert "L*IDmax*C" in out

    def test_verify_bridge_refused(self, capsys):
        code, out = run_cli(capsys, "verify", "--topology", "bridge")
        assert code == 1
        assert "witness" in out

    def test_verify_statistical_topology(self, capsys):
        code, out = run_cli(
            capsys, "verify", "--statistical", "--topology", "theta:0,1,2",
            "--samples", "12", "--id-max", "64",
        )
        assert code == 0
        assert "PASSED (sampled topology battery)" in out

    def test_farm_submit_ear_workload(self, capsys, tmp_path):
        root = str(tmp_path / "farm")
        code, out = run_cli(
            capsys, "farm", "submit", "--root", root, "--workload", "ear",
            "--topology", "theta:0,1,2", "--total", "12",
            "--shard-size", "6", "--backend", "python",
        )
        assert code == 0
        assert "workload=ear" in out
        code, out = run_cli(
            capsys, "farm", "submit", "--root", root, "--workload", "ear",
            "--topology", "theta:0,1,2", "--total", "12",
            "--shard-size", "6", "--backend", "python",
            "--min-hit-rate", "1.0",
        )
        assert code == 0
        code, out = run_cli(capsys, "farm", "collect", "--root", root)
        assert code == 0
        assert '"clean":true' in out
