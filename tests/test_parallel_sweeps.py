"""The process-parallel sweep runner: identical results at any width."""

import pytest

from repro.analysis.average_case import (
    measure_chang_roberts_over_placements,
    measure_oblivious_over_placements,
    random_placements,
)
from repro.analysis.parallel import parallel_map, resolve_processes
from repro.exceptions import ConfigurationError


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


class TestResolveProcesses:
    def test_serial_spellings(self):
        assert resolve_processes(None) == 1
        assert resolve_processes(0) == 1
        assert resolve_processes(1) == 1

    def test_auto_is_at_least_one(self):
        assert resolve_processes("auto") >= 1

    def test_explicit_count_passes_through(self):
        assert resolve_processes(3) == 3

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            resolve_processes(-2)
        with pytest.raises(ConfigurationError):
            resolve_processes("many")
        with pytest.raises(ConfigurationError):
            resolve_processes(True)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_parallel_matches_serial_in_order(self):
        items = list(range(25))
        assert parallel_map(_square, items, processes=2) == [
            _square(x) for x in items
        ]

    def test_single_item_never_spawns(self):
        assert parallel_map(_square, [7], processes=8) == [49]

    def test_empty_input(self):
        assert parallel_map(_square, [], processes=2) == []

    def test_worker_exceptions_propagate(self):
        with pytest.raises(ValueError):
            parallel_map(_boom, [1, 2], processes=2)
        with pytest.raises(ValueError):
            parallel_map(_boom, [1, 2])


class TestPlacementSweeps:
    def test_placements_are_seed_deterministic(self):
        assert random_placements(6, 4, seed=9) == random_placements(6, 4, seed=9)
        assert random_placements(6, 4, seed=9) != random_placements(6, 4, seed=10)

    def test_chang_roberts_sweep_parallel_equals_serial(self):
        serial = measure_chang_roberts_over_placements(10, 8, seed=2)
        fanned = measure_chang_roberts_over_placements(10, 8, seed=2, processes=2)
        assert serial == fanned

    def test_oblivious_sweep_parallel_and_batched_equal_serial(self):
        serial = measure_oblivious_over_placements(6, 6, seed=4)
        fanned = measure_oblivious_over_placements(
            6, 6, seed=4, processes=2, batched=True
        )
        assert serial == fanned
        # Theorem 1: zero placement variance, exactly n(2*IDmax + 1).
        assert serial.spread == 0
        assert serial.mean == 6 * (2 * 6 + 1)
