"""Adversarial fault-plan search: plans, search loop, artifacts, farm,
and the Lemma 18 w.h.p. predicate.

The plan space, the optimizers, and the artifact format are all pure
functions of their seeds and coordinates, so the contracts here are
deterministic equalities: the same search seed walks the same
candidates, a plan's canonical dict round-trips through JSON and farm
params, and a saved artifact replays to bit-identical classification
counts in a fresh process.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings as hyp_settings

from repro.adversary import (
    ARTIFACT_VERSION,
    CRASH_COST,
    AdversaryPlan,
    EvalSettings,
    PlanSpace,
    artifact_dict,
    evaluate_plan,
    load_artifact,
    plan_from_canonical,
    random_baseline,
    replay_artifact,
    save_artifact,
    search_worst_plan,
)
from repro.analysis.whp import whp_target
from repro.exceptions import ConfigurationError
from repro.farm.campaign import Campaign, adversary_params, recovery_params
from repro.farm.keys import canonical_json
from repro.faults.model import GroupDrop
from repro.verification.statistical import (
    AnonymousWhpReport,
    run_anonymous_whp_check,
)

from strategies import adversary_plans

#: Fast evaluation point shared across the executing tests.
SMALL = EvalSettings(n=4, id_max=24, samples=12, block_size=8)

#: Small search space: a handful of coordinates, budget 2.
SMALL_SPACE = PlanSpace(
    n=4,
    budget=2,
    rounds=(1, 2, 4),
    thresholds=(1, 2),
    offsets=(0, 1),
    restarts=(None, 1),
    drop_rates=(0.5,),
    max_drops=1,
    max_burst=2,
)


class TestPlanValidation:
    def test_cost_accounting(self):
        assert AdversaryPlan.trivial().cost == 0
        crash = AdversaryPlan(crash=True)
        assert crash.cost == CRASH_COST == 2
        loaded = AdversaryPlan(
            crash=True,
            restart_after=2,
            drops=(GroupDrop(), GroupDrop(offset=1)),
            burst_length=3,
            drop_rate=0.5,
        )
        assert loaded.cost == 2 + 2 + 3

    def test_burst_needs_a_rate(self):
        with pytest.raises(ConfigurationError, match="drop_rate"):
            AdversaryPlan(burst_length=2, drop_rate=0.0)

    def test_restart_requires_crash(self):
        with pytest.raises(ConfigurationError, match="nothing to restart"):
            AdversaryPlan(restart_after=2, drops=(GroupDrop(),))

    def test_trigger_validation(self):
        with pytest.raises(ConfigurationError, match="trigger_kind"):
            AdversaryPlan(trigger_kind="tau", crash=True)
        with pytest.raises(ConfigurationError, match="trigger_value"):
            AdversaryPlan(trigger_value=0, crash=True)

    def test_trivial_plans_canonicalize_to_one_spelling(self):
        """Member-free plans collapse to the trivial plan regardless of
        how their inert coordinates were spelled — the farm cache-key
        injectivity contract."""
        a = AdversaryPlan(anchor=3, trigger_kind="sigma", trigger_value=2)
        b = AdversaryPlan.trivial()
        assert a == b and a.to_canonical() == b.to_canonical()
        assert a.is_trivial and a.to_model().is_noop

    def test_burstless_drop_rate_is_inert(self):
        a = AdversaryPlan(crash=True, drop_rate=0.7)
        b = AdversaryPlan(crash=True)
        assert a == b

    def test_canonical_round_trip(self):
        plan = AdversaryPlan(
            anchor=2,
            trigger_kind="rho",
            trigger_value=2,
            crash=True,
            restart_after=1,
            drops=(GroupDrop(offset=1, node_offset=2, direction="ccw"),),
            burst_length=2,
            drop_rate=0.5,
            fault_seed=7,
        )
        data = json.loads(canonical_json(plan.to_canonical()))
        assert plan_from_canonical(data) == plan

    def test_compiles_to_a_single_group(self):
        plan = AdversaryPlan(
            anchor=1, trigger_kind="sigma", trigger_value=2,
            crash=True, burst_length=2, drop_rate=0.5,
        )
        model = plan.to_model()
        assert len(model.groups) == 1
        group = model.groups[0]
        assert group.trigger_field == "sigma" and group.trigger_threshold == 2
        assert group.crash and group.burst is not None
        assert model.drop_rate == 0.5
        absolute = AdversaryPlan(trigger_kind="round", trigger_value=3,
                                 crash=True).to_model().groups[0]
        assert absolute.at_round == 3 and absolute.trigger_field is None


class TestPlanSpace:
    def test_space_validation(self):
        with pytest.raises(ConfigurationError, match="budget"):
            PlanSpace(n=4, budget=-1)
        with pytest.raises(ConfigurationError, match="drop_rates"):
            PlanSpace(n=4, budget=2, drop_rates=(0.0,))
        with pytest.raises(ConfigurationError, match="ring"):
            PlanSpace(n=1, budget=2)

    def test_sampling_is_seed_deterministic(self):
        import random

        first = [SMALL_SPACE.sample(random.Random(5)) for _ in range(6)]
        second = [SMALL_SPACE.sample(random.Random(5)) for _ in range(6)]
        assert first == second

    @given(pair=adversary_plans())
    @hyp_settings(max_examples=60, deadline=None)
    def test_sampled_plans_respect_the_budget(self, pair):
        space, plan = pair
        assert plan.cost <= space.budget
        assert plan_from_canonical(plan.to_canonical()) == plan

    @given(pair=adversary_plans())
    @hyp_settings(max_examples=40, deadline=None)
    def test_mutation_stays_inside_the_budget(self, pair):
        import random

        space, plan = pair
        rng = random.Random(11)
        for _ in range(4):
            plan = space.mutate(plan, rng)
            assert plan.cost <= space.budget

    def test_zero_budget_samples_only_the_trivial_plan(self):
        import random

        space = PlanSpace(n=4, budget=0)
        assert space.sample(random.Random(0)) == AdversaryPlan.trivial()


class TestEvaluationAndSearch:
    def test_trivial_plan_recovers_everything(self):
        evaluation = evaluate_plan(AdversaryPlan.trivial(), SMALL)
        assert evaluation.recovered == SMALL.samples
        assert evaluation.success_rate == 1.0
        assert evaluation.fault_events == {}

    def test_search_is_seed_deterministic(self):
        runs = [
            search_worst_plan(
                SMALL_SPACE, SMALL, iterations=2, population=4, search_seed=3
            )
            for _ in range(2)
        ]
        assert runs[0].best.plan == runs[1].best.plan
        assert runs[0].best.objective == runs[1].best.objective
        assert runs[0].trace == runs[1].trace

    def test_zero_budget_short_circuits(self):
        space = PlanSpace(n=4, budget=0)
        result = search_worst_plan(space, SMALL, search_seed=9)
        assert result.best.plan.is_trivial
        assert result.iterations == 0 and result.evaluations == 1

    def test_memo_counts_distinct_plans_only(self):
        result = search_worst_plan(
            SMALL_SPACE, SMALL, iterations=3, population=4, search_seed=0
        )
        assert result.evaluations <= 3 * 4
        assert len(result.trace) == 3

    def test_epsilon_greedy_runs_and_improves_on_trivial(self):
        result = search_worst_plan(
            SMALL_SPACE,
            SMALL,
            strategy="epsilon-greedy",
            iterations=6,
            search_seed=1,
        )
        trivial = evaluate_plan(AdversaryPlan.trivial(), SMALL)
        assert result.best.objective <= trivial.objective
        assert not result.best.plan.is_trivial

    def test_search_never_loses_to_its_own_candidates(self):
        """The returned best is the minimum over everything evaluated —
        in particular no worse than a same-seed random baseline drawn
        from the identical stream (epsilon-greedy seeds its first sample
        from the same generator)."""
        result = search_worst_plan(
            SMALL_SPACE, SMALL, iterations=2, population=6, search_seed=4
        )
        baseline = random_baseline(SMALL_SPACE, SMALL, count=4, search_seed=104)
        assert result.best.objective[0] <= baseline.objective[0]

    def test_strategy_and_parameter_validation(self):
        with pytest.raises(ConfigurationError, match="strategy"):
            search_worst_plan(SMALL_SPACE, SMALL, strategy="anneal")
        with pytest.raises(ConfigurationError, match="iteration"):
            search_worst_plan(SMALL_SPACE, SMALL, iterations=0)
        with pytest.raises(ConfigurationError, match="baseline"):
            random_baseline(SMALL_SPACE, SMALL, count=0)


class TestArtifacts:
    def _result(self):
        return search_worst_plan(
            SMALL_SPACE, SMALL, iterations=2, population=4, search_seed=2
        )

    def test_round_trip_and_byte_identity(self, tmp_path):
        result = self._result()
        payload = artifact_dict(result, SMALL)
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_artifact(first, payload)
        save_artifact(second, load_artifact(first))
        assert first.read_bytes() == second.read_bytes()
        assert load_artifact(first)["worst_plan"] == result.best.to_dict()

    def test_replay_matches_bit_for_bit(self, tmp_path):
        result = self._result()
        path = save_artifact(
            tmp_path / "plan.json", artifact_dict(result, SMALL)
        )
        outcome = replay_artifact(load_artifact(path))
        assert outcome.matches
        assert outcome.observed == outcome.expected

    def test_tampered_counts_are_detected(self, tmp_path):
        result = self._result()
        payload = artifact_dict(result, SMALL)
        payload["worst_plan"]["recovered"] += 1
        outcome = replay_artifact(payload)
        assert not outcome.matches

    def test_load_rejects_malformed_artifacts(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no artifact"):
            load_artifact(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_artifact(bad)
        wrong_kind = tmp_path / "kind.json"
        wrong_kind.write_text(json.dumps({"kind": "sweep"}))
        with pytest.raises(ConfigurationError, match="adversary-plan"):
            load_artifact(wrong_kind)
        wrong_version = tmp_path / "version.json"
        wrong_version.write_text(
            json.dumps({"kind": "adversary-plan", "version": ARTIFACT_VERSION + 1})
        )
        with pytest.raises(ConfigurationError, match="version"):
            load_artifact(wrong_version)

    def test_baseline_section_is_recorded(self):
        result = self._result()
        baseline = random_baseline(SMALL_SPACE, SMALL, count=2, search_seed=9)
        payload = artifact_dict(result, SMALL, baseline=baseline, baseline_count=2)
        assert payload["baseline"]["count"] == 2
        assert payload["baseline"]["best"]["plan"] == baseline.plan.to_canonical()


class TestFarmAdversaryWorkload:
    def _plan(self):
        return AdversaryPlan(
            anchor=1, trigger_kind="round", trigger_value=2,
            crash=True, restart_after=1,
        )

    def test_params_canonicalize_plan_spellings(self):
        """Two spellings of one plan (inert coordinates set or not) must
        produce identical campaign params — and hence identical keys."""
        sloppy = {
            "anchor": 3, "trigger_kind": "sigma", "trigger_value": 2,
            "crash": False, "restart_after": None, "drops": [],
            "burst_length": 0, "drop_rate": 0.0, "fault_seed": 0,
        }
        tidy = AdversaryPlan.trivial().to_canonical()
        assert adversary_params(plan=sloppy) == adversary_params(plan=tidy)

    def test_jobs_resolve_to_recovery_coordinates(self):
        plan = self._plan()
        campaign = Campaign(
            "adversary",
            total=12,
            params=adversary_params(plan=plan.to_canonical(), n=4, id_max=24),
        )
        assert campaign.job_workload == "recovery"
        (point,) = campaign.grid()
        direct = recovery_params(n=4, id_max=24, faults=plan.to_model())
        assert point == direct
        assert campaign.jobs()[0].workload == "recovery"

    def test_distinct_plans_key_distinct_campaigns(self):
        a = Campaign(
            "adversary", total=12,
            params=adversary_params(plan=self._plan().to_canonical()),
        )
        other = AdversaryPlan(
            anchor=2, trigger_kind="round", trigger_value=2,
            crash=True, restart_after=1,
        )
        b = Campaign(
            "adversary", total=12,
            params=adversary_params(plan=other.to_canonical()),
        )
        assert a.cid != b.cid
        assert a.jobs()[0].key != b.jobs()[0].key

    def test_farm_evaluation_matches_direct_and_hits_cache(self, tmp_path):
        plan = self._plan()
        direct = evaluate_plan(plan, SMALL)
        warm = evaluate_plan(plan, SMALL, farm_root=tmp_path)
        assert warm.to_dict() == direct.to_dict()
        # Second pass must be served from the content-addressed store.
        from repro.farm.campaign import Campaign as C
        from repro.farm.service import Farm

        farm = Farm(tmp_path)
        campaign = C(
            "adversary",
            total=SMALL.samples,
            params=adversary_params(
                plan=plan.to_canonical(), n=SMALL.n, id_max=SMALL.id_max,
            ),
        )
        outcome = farm.submit(campaign)
        assert outcome.complete and outcome.hits == len(campaign.jobs())


class TestLemma18Predicate:
    def test_whp_target_is_the_lemma_floor(self):
        assert whp_target(8, 2.0) == 1 - 8 ** (-2.0)
        assert whp_target(6, 1.0) == pytest.approx(1 - 1 / 6)

    def test_clean_check_holds_with_replayable_counterexamples(self):
        report = run_anonymous_whp_check(n=6, c=2.0, trials=60, seed=0)
        assert report.holds
        assert report.target == whp_target(6, 2.0)
        assert report.rate_high >= report.target
        assert report.successes + report.failures == 60
        for ce in report.counterexamples:
            assert ce.replay() is not None  # the seed alone reproduces it

    def test_failing_report_rejects(self):
        """The one-sided test rejects exactly when even the CP upper
        bound sits below the Lemma 18 floor."""
        report = AnonymousWhpReport(
            n=8, c=2.0, trials=100, successes=80, confidence=0.99,
            rate_low=0.70, rate_high=0.88, target=whp_target(8, 2.0),
            seed=0, backend="python",
        )
        assert report.target > 0.88
        assert not report.holds
        assert report.success_rate == 0.8

    def test_check_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            run_anonymous_whp_check(n=6, trials=0)
        with pytest.raises(ConfigurationError):
            run_anonymous_whp_check(n=1, trials=10)


class TestAdversaryCli:
    def test_budget_zero_exits_cleanly(self, capsys):
        from repro.cli import main

        code = main([
            "faults", "search", "--budget", "0", "--n", "4",
            "--id-max", "24", "--samples", "8",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "trivial" in out and "OK" in out

    def test_search_writes_artifact_replay_verifies(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "worst.json"
        code = main([
            "faults", "search", "--budget", "2", "--n", "4",
            "--id-max", "24", "--samples", "12", "--iterations", "2",
            "--population", "4", "--search-seed", "2",
            "--restarts", "1", "--drop-rates", "0.5",
            "--max-drops", "1", "--max-burst", "2",
            "--out", str(artifact),
        ])
        assert code == 0
        capsys.readouterr()
        code = main(["faults", "replay", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical" in out

    def test_statistical_anonymous_verify(self, capsys):
        from repro.cli import main

        code = main([
            "verify", "--statistical", "--algorithm", "anonymous",
            "--n", "6", "--samples", "40",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "lemma 18 target" in out
        assert "PASSED" in out

    def test_anonymous_requires_statistical(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="statistical"):
            main(["verify", "--algorithm", "anonymous"])
