"""Unit tests for the defective FIFO channel."""

import pytest

from repro.simulator.channel import Channel


def make_channel(defective: bool = True) -> Channel:
    return Channel(channel_id=0, src=(0, 1), dst=(1, 0), defective=defective)


class TestFifoOrder:
    def test_messages_delivered_in_send_order(self):
        channel = make_channel(defective=False)
        for seq in range(5):
            channel.enqueue(send_seq=seq, content=f"msg{seq}")
        delivered = [channel.dequeue() for _ in range(5)]
        assert delivered == [(seq, f"msg{seq}") for seq in range(5)]

    def test_peek_matches_next_dequeue(self):
        channel = make_channel()
        channel.enqueue(send_seq=10)
        channel.enqueue(send_seq=11)
        assert channel.peek_send_seq() == 10
        seq, _content = channel.dequeue()
        assert seq == 10
        assert channel.peek_send_seq() == 11

    def test_interleaved_enqueue_dequeue_keeps_order(self):
        channel = make_channel()
        channel.enqueue(send_seq=1)
        channel.enqueue(send_seq=2)
        assert channel.dequeue()[0] == 1
        channel.enqueue(send_seq=3)
        assert channel.dequeue()[0] == 2
        assert channel.dequeue()[0] == 3


class TestDefectiveness:
    def test_defective_channel_erases_content(self):
        channel = make_channel(defective=True)
        channel.enqueue(send_seq=1, content={"secret": 42})
        _seq, content = channel.dequeue()
        assert content is None

    def test_non_defective_channel_preserves_content(self):
        channel = make_channel(defective=False)
        payload = ("probe", 7, 2, 4)
        channel.enqueue(send_seq=1, content=payload)
        _seq, content = channel.dequeue()
        assert content == payload

    def test_defective_channel_preserves_existence_and_count(self):
        # The noise model corrupts content, never drops or injects.
        channel = make_channel(defective=True)
        for seq in range(7):
            channel.enqueue(send_seq=seq, content=seq)
        assert channel.pending == 7
        received = 0
        while channel:
            channel.dequeue()
            received += 1
        assert received == 7


class TestAccounting:
    def test_pending_counts(self):
        channel = make_channel()
        assert channel.pending == 0
        assert not channel
        channel.enqueue(send_seq=1)
        assert channel.pending == 1
        assert channel
        channel.dequeue()
        assert channel.pending == 0

    def test_dequeue_empty_raises(self):
        channel = make_channel()
        with pytest.raises(IndexError):
            channel.dequeue()
