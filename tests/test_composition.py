"""Corollary 5, end-to-end: election composed with defective computation.

No pre-existing root, fully defective channels throughout.  Phase 1 is
Algorithm 2; at each node's termination point it switches to the circuit
transport rooted at the elected leader.  The composition must preserve
quiescent termination with the leader last — the paper's Section 1.1
message-attribution discipline, exercised for real.
"""

import random

import pytest

from repro.core.composition import ComposedNode, run_composed
from repro.core.common import LeaderState
from repro.defective.simulation import (
    AllReduceProgram,
    GatherProgram,
    SizeProgram,
)
from repro.defective.transport import transport_pulse_cost
from repro.exceptions import ConfigurationError
from tests.conftest import SCHEDULER_FACTORIES


def sum_program():
    return AllReduceProgram(lambda a, b: a + b)


class TestEndToEnd:
    def test_sum_without_preexisting_root(self, make_scheduler):
        outcome = run_composed(
            [4, 9, 2, 7, 5], [1, 2, 3, 4, 5], sum_program(), scheduler=make_scheduler()
        )
        assert outcome.leader == 1  # max ID 9
        assert outcome.outputs == [15] * 5

    def test_max_and_size_programs(self):
        outcome = run_composed([3, 8, 5], [10, 4, 7], AllReduceProgram(max))
        assert outcome.outputs == [10] * 3
        outcome = run_composed([3, 8, 5], [0, 0, 0], SizeProgram())
        assert outcome.outputs == [3] * 3

    def test_gather_from_elected_leader(self):
        outcome = run_composed([2, 9, 4], [5, 6, 7], GatherProgram())
        # Gather order is clockwise from the leader (index 1).
        assert outcome.outputs == [[6, 7, 5]] * 3

    def test_leader_position_does_not_matter(self):
        for ids in ([9, 1, 2], [1, 9, 2], [1, 2, 9]):
            outcome = run_composed(ids, [3, 4, 5], sum_program())
            assert outcome.outputs == [12] * 3
            assert outcome.ids[outcome.leader] == 9


class TestCompositionDiscipline:
    def test_quiescent_termination_preserved(self, make_scheduler):
        outcome = run_composed(
            [4, 9, 2, 7], [1, 1, 1, 1], sum_program(), scheduler=make_scheduler()
        )
        assert outcome.run.quiescently_terminated

    def test_leader_terminates_last_overall(self, make_scheduler):
        outcome = run_composed(
            [4, 9, 2, 7], [1, 1, 1, 1], sum_program(), scheduler=make_scheduler()
        )
        assert outcome.run.termination_order[-1] == outcome.leader

    def test_every_node_switched_with_correct_verdict(self):
        outcome = run_composed([4, 9, 2], [1, 2, 3], sum_program())
        for index, node in enumerate(outcome.nodes):
            expected = (
                LeaderState.LEADER if index == 1 else LeaderState.NON_LEADER
            )
            assert node.election_output is expected
            assert node.compute is not None  # everyone reached phase 2

    def test_phase_boundary_message_attribution(self):
        # The phase-2 census must yield the true ring size and positions
        # even under adversarial schedules: any phase-1 pulse leaking into
        # phase 2 would corrupt the unary counts.
        for factory in SCHEDULER_FACTORIES.values():
            outcome = run_composed(
                [11, 3, 7, 5, 2], [0, 0, 0, 0, 0], SizeProgram(), scheduler=factory()
            )
            assert outcome.outputs == [5] * 5
            leader = outcome.leader
            for index, node in enumerate(outcome.nodes):
                assert node.compute.ring_size == 5
                assert node.compute.position == (index - leader) % 5


class TestComposedComplexity:
    def test_total_is_election_plus_transport(self):
        ids = [4, 9, 2, 7]
        inputs = [1, 2, 3, 4]
        outcome = run_composed(ids, inputs, sum_program())
        election_cost = len(ids) * (2 * max(ids) + 1)  # Theorem 1
        transport_schedule = [
            value
            for node in outcome.nodes
            for value in node.compute.values_sent
        ]
        transport_cost = transport_pulse_cost(len(ids), transport_schedule)
        assert outcome.total_pulses == election_cost + transport_cost

    def test_cost_is_schedule_invariant(self):
        counts = {
            run_composed(
                [4, 9, 2, 7], [1, 2, 3, 4], sum_program(), scheduler=factory()
            ).total_pulses
            for factory in SCHEDULER_FACTORIES.values()
        }
        assert len(counts) == 1


class TestRandomizedSweep:
    def test_many_random_compositions(self):
        rng = random.Random(31)
        for trial in range(15):
            n = rng.randint(2, 10)
            ids = rng.sample(range(1, 60), n)
            inputs = [rng.randint(0, 20) for _ in range(n)]
            outcome = run_composed(ids, inputs, sum_program())
            assert outcome.outputs == [sum(inputs)] * n, (ids, inputs)
            assert outcome.run.quiescently_terminated


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            run_composed([1, 2], [1], sum_program())

    def test_single_node_rejected(self):
        # The transport's sender/receiver automaton needs a real ring;
        # n = 1 computations are local anyway (run_circuit_transport).
        with pytest.raises(ConfigurationError):
            run_composed([5], [1], sum_program())

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            run_composed([3, 3], [1, 2], sum_program())
