"""The circuit transport: content over a fully defective ring with a root."""

import pytest

from repro.defective.simulation import (
    AllReduceProgram,
    GatherProgram,
    SizeProgram,
    run_defective_computation,
)
from repro.defective.transport import (
    run_circuit_transport,
    transport_pulse_cost,
)
from repro.exceptions import ConfigurationError
from tests.conftest import SCHEDULER_FACTORIES


def all_sent_values(outcome):
    return [value for node in outcome.nodes for value in node.values_sent]


class TestComputations:
    def test_sum(self):
        outcome = run_defective_computation([3, 1, 4, 1, 5], "sum")
        assert outcome.outputs == [14] * 5

    def test_max(self):
        outcome = run_defective_computation([3, 9, 4], "max")
        assert outcome.outputs == [9] * 3

    def test_min(self):
        outcome = run_defective_computation([3, 9, 4], "min")
        assert outcome.outputs == [3] * 3

    def test_size(self):
        outcome = run_defective_computation([0] * 7, "size")
        assert outcome.outputs == [7] * 7

    def test_gather_collects_in_clockwise_order_from_leader(self):
        outcome = run_defective_computation([2, 0, 3], "gather", leader=1)
        assert outcome.outputs == [[0, 3, 2]] * 3

    def test_zero_values_are_supported(self):
        outcome = run_defective_computation([0, 0], "sum")
        assert outcome.outputs == [0, 0]

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            run_defective_computation([1, 2], "median")

    def test_negative_input_rejected(self):
        with pytest.raises(ConfigurationError):
            run_defective_computation([1, -2], "sum")


class TestLeaderPlacement:
    @pytest.mark.parametrize("leader", [0, 1, 2, 3])
    def test_result_independent_of_root_position(self, leader):
        outcome = run_defective_computation([5, 2, 8, 1], "sum", leader=leader)
        assert outcome.outputs == [16] * 4

    def test_positions_are_clockwise_distances_from_leader(self):
        outcome = run_defective_computation([1, 1, 1, 1], "size", leader=2)
        positions = [node.position for node in outcome.nodes]
        assert positions == [2, 3, 0, 1]

    def test_bad_leader_index_rejected(self):
        with pytest.raises(ConfigurationError):
            run_defective_computation([1, 2], "sum", leader=5)


class TestQuiescentTermination:
    def test_no_violations_strict_mode(self):
        # run_circuit_transport already runs with strict_quiescence=True;
        # reaching here without an exception is the assertion.
        outcome = run_defective_computation([4, 4, 4, 4], "sum")
        assert outcome.run.quiescently_terminated

    def test_leader_terminates_last(self):
        for leader in range(3):
            outcome = run_defective_computation([2, 3, 4], "max", leader=leader)
            assert outcome.leader_terminated_last

    def test_every_node_learns_ring_size(self):
        outcome = run_defective_computation([1, 2, 3, 4, 5], "sum")
        assert all(node.ring_size == 5 for node in outcome.nodes)


class TestScheduleIndependence:
    def test_results_and_cost_invariant_across_schedulers(self):
        results = set()
        costs = set()
        for factory in SCHEDULER_FACTORIES.values():
            outcome = run_defective_computation(
                [3, 1, 4, 1], "sum", scheduler=factory()
            )
            results.add(tuple(outcome.outputs))
            costs.add(outcome.total_pulses)
        assert results == {(9, 9, 9, 9)}
        assert len(costs) == 1


class TestExactCost:
    @pytest.mark.parametrize("inputs", [[1, 2], [3, 1, 4], [0, 0, 0, 0], [5, 9, 2, 6, 1]])
    def test_pulse_count_matches_cost_formula(self, inputs):
        outcome = run_defective_computation(inputs, "sum")
        schedule = all_sent_values(outcome)
        assert outcome.total_pulses == transport_pulse_cost(len(inputs), schedule)

    def test_cost_formula_components(self):
        # One transmission of value m: (m+1) ticks + (m+1) acks + (n-1)
        # delimiter hops.
        assert transport_pulse_cost(4, [7]) == 2 * 8 + 3
        assert transport_pulse_cost(2, [0]) == 2 * 1 + 1

    def test_solo_ring_costs_nothing(self):
        assert transport_pulse_cost(1, [5, 5]) == 0


class TestSoloRing:
    def test_all_programs_work_alone(self):
        assert run_defective_computation([7], "sum").outputs == [7]
        assert run_defective_computation([7], "max").outputs == [7]
        assert run_defective_computation([7], "size").outputs == [1]
        assert run_defective_computation([7], "gather").outputs == [[7]]

    def test_solo_sends_no_pulses(self):
        outcome = run_defective_computation([3], "sum")
        assert outcome.total_pulses == 0
        assert outcome.nodes[0].terminated


class TestProgramsDirectly:
    def test_custom_fold_function(self):
        program = AllReduceProgram(lambda a, b: a * b + 1)
        outcome = run_circuit_transport([2, 3, 4], program)
        # fold left-to-right in CW order from the leader: ((2*3+1)*4+1)=29
        assert outcome.outputs == [29] * 3

    def test_forensic_value_logs(self):
        outcome = run_circuit_transport([1, 2], AllReduceProgram(max))
        leader, follower = outcome.nodes
        # census: leader sends 1, follower 2; fold: 1 then max(1,2)=2;
        # broadcast: 2, 2; closing: n=2 twice.
        assert leader.values_sent == [1, 1, 2, 2]
        assert follower.values_sent == [2, 2, 2, 2]
