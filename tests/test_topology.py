"""The topology layer, pinned byte-identical to the pre-topology stack.

The refactor lifted every channel-wiring loop into ``repro.topology``;
these tests are the contract that the lift changed *nothing observable*
on rings: the channel table (ids, ports, directions) matches the
historic builders entry for entry, the exhaustive explorer reaches the
exact same terminal fingerprints (pinned as SHA-256 hexes computed on
the pre-refactor tree), and the sweep farm derives the exact same shard
keys (pinned likewise), so every existing cache stays warm.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonoriented import NonOrientedNode
from repro.core.schema import freeze_value, pack_frozen
from repro.core.warmup import WarmupNode
from repro.exceptions import ConfigurationError
from repro.graphs.connectivity import Graph
from repro.simulator.node import PORT_ONE, PORT_ZERO
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.topology import (
    ChannelSpec,
    Topology,
    graph_topology,
    oriented_ring,
    ring_convention,
)
from repro.verification import explore_all_schedules

from .strategies import flip_patterns, two_edge_connected_graphs

#: The historic 4-ring channel table for flips [T, F, T, F], written out
#: longhand (channel id, (src node, src port), (dst node, dst port)).
#: Computed on the pre-topology tree; the convention may never drift.
PINNED_RING_TABLE = [
    (0, (0, 0), (1, 0)),
    (1, (1, 0), (0, 0)),
    (2, (1, 1), (2, 1)),
    (3, (2, 1), (1, 1)),
    (4, (2, 0), (3, 0)),
    (5, (3, 0), (2, 0)),
    (6, (3, 1), (0, 1)),
    (7, (0, 1), (3, 1)),
]

#: Pre-refactor explorer terminal fingerprints,
#: sha256(pack_frozen(freeze_value(fp))).
PINNED_WARMUP_TERMINAL = (
    "834be645027346d88347ae2fcbf75ef5749f343183d576780bb93af8eadfaf37"
)
PINNED_NONORIENTED_TERMINAL = (
    "1e20e704ae4acb8f9c7ca0083d8fec15c66f15be2212c75571b7c787bfba1e49"
)


def _terminal_hex(result):
    assert len(result.terminal_fingerprints) == 1
    packed = pack_frozen(freeze_value(result.terminal_fingerprints[0]))
    return hashlib.sha256(packed).hexdigest()


class TestRingConventionPins:
    def test_pinned_channel_table(self):
        topology = ring_convention([True, False, True, False])
        table = [
            (i, spec.src, spec.dst)
            for i, spec in enumerate(topology.channels)
        ]
        assert table == PINNED_RING_TABLE

    def test_oriented_ring_is_all_false_flips(self):
        assert oriented_ring(5) == ring_convention([False] * 5)
        assert oriented_ring(5).kind == "oriented-ring"
        assert ring_convention([True, False, False]).kind == "nonoriented-ring"

    @given(flips=st.lists(st.booleans(), min_size=1, max_size=6))
    @settings(deadline=None)
    def test_matches_historic_formula(self, flips):
        """Channel 2i is CW over ring edge i, 2i+1 the CCW channel back,
        and a node's CW port is Port_1 unless flipped — for every n and
        flip pattern, not just the pinned example."""
        n = len(flips)
        topology = ring_convention(flips)
        assert len(topology.channels) == 2 * n

        def cw(v):
            return PORT_ZERO if flips[v] else PORT_ONE

        def ccw(v):
            return PORT_ONE if flips[v] else PORT_ZERO

        for i in range(n):
            j = (i + 1) % n
            assert topology.channels[2 * i] == ChannelSpec(i, cw(i), j, ccw(j))
            assert topology.channels[2 * i + 1] == ChannelSpec(
                j, ccw(j), i, cw(i)
            )

    @given(flips=st.lists(st.booleans(), min_size=1, max_size=5))
    @settings(deadline=None, max_examples=25)
    def test_builders_wire_the_convention(self, flips):
        """The simulator's ring builders route through ring_convention:
        the live network's channel list equals the topology's table."""
        nodes = [NonOrientedNode(i + 1) for i in range(len(flips))]
        network = build_nonoriented_ring(nodes, flips=flips).network
        topology = ring_convention(flips)
        assert [
            (channel.src, channel.dst) for channel in network.channels
        ] == [(spec.src, spec.dst) for spec in topology.channels]


class TestExplorerFingerprintPins:
    def test_warmup_terminal_unchanged(self):
        result = explore_all_schedules(
            lambda: build_oriented_ring(
                [WarmupNode(i) for i in [2, 3, 1]]
            ).network
        )
        assert _terminal_hex(result) == PINNED_WARMUP_TERMINAL

    def test_nonoriented_terminal_unchanged(self):
        result = explore_all_schedules(
            lambda: build_nonoriented_ring(
                [NonOrientedNode(i) for i in [2, 3, 1]],
                flips=[True, False, True],
            ).network
        )
        assert _terminal_hex(result) == PINNED_NONORIENTED_TERMINAL


class TestFarmKeyPins:
    """Ring farm keys are byte-identical to the pre-topology farm."""

    PINNED = {
        "recovery": "c5ff63644d1e37f8fa8a505ed1a4c3e1a18a8dd52dd8c99d2b8a420945fa0061",
        "whp": "7f5ee32c30b091ae2fa243f96edc12ebb2d5048ebfb09709414b1523f69d3123",
        "placements": "676817ad1e9d7dc4fdc2d6ed23a5360ce108d72049d8c9dcf4baaa2cba030bd0",
    }

    def test_recovery_key_unchanged(self):
        from repro.farm.campaign import recovery_params
        from repro.farm.keys import shard_key
        from repro.faults.model import FaultModel

        params = recovery_params(
            n=6, id_max=64, faults=FaultModel(drop_rate=0.01, seed=7)
        )
        assert shard_key("recovery", params, 0, 250) == self.PINNED["recovery"]

    def test_whp_key_unchanged(self):
        from repro.farm.campaign import whp_params
        from repro.farm.keys import shard_key

        assert (
            shard_key("whp", whp_params(n=8, c=1.5, seed=3), 0, 100)
            == self.PINNED["whp"]
        )

    def test_placements_key_unchanged(self):
        from repro.farm.campaign import placements_params
        from repro.farm.keys import shard_key

        assert (
            shard_key("placements", placements_params(n=16, seed=0), 0, 100)
            == self.PINNED["placements"]
        )

    def test_topology_semantics_only_for_topology_params(self):
        """The topology_semantics coordinate enters the key payload only
        when params carry a non-None topology — ring keys never move."""
        from repro.farm.keys import (
            SEMANTICS_VERSION,
            TOPOLOGY_SEMANTICS_VERSION,
            digest,
            shard_key,
        )

        ring_like = {"n": 4, "seed": 0}
        base = {
            "semantics": SEMANTICS_VERSION,
            "workload": "whp",
            "params": ring_like,
            "start": 0,
            "stop": 10,
        }
        # No topology -> the payload has no topology_semantics coordinate.
        assert shard_key("whp", ring_like, 0, 10) == digest(base)
        # A topology folds the second version in.
        with_topology = {**ring_like, "topology": {"kind": "general"}}
        assert shard_key("whp", with_topology, 0, 10) == digest(
            {
                **base,
                "params": with_topology,
                "topology_semantics": TOPOLOGY_SEMANTICS_VERSION,
            }
        )


class TestGraphTopology:
    def test_sorted_adjacency_ports(self):
        # theta on 4 vertices: cycle 0-1-2-3 plus chord 0-2.
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        topology = graph_topology(graph)
        assert topology.kind == "general"
        # vertex 0's sorted neighbors are [1, 2, 3] -> ports 0, 1, 2.
        spec = topology.channels[0]  # edge (0, 1) -> channel 0 is 0 -> 1
        assert spec.src == (0, 0)
        assert topology.port_counts == (3, 2, 3, 2)
        assert topology.total_ports == 10
        assert topology.port_offsets == (0, 3, 5, 8, 10)
        assert topology.port_slot(2, 1) == 6

    def test_port_slot_rejects_out_of_range(self):
        topology = graph_topology(Graph.ring(4))
        with pytest.raises(ConfigurationError):
            topology.port_slot(0, 2)

    def test_descriptor_stable_across_edge_spellings(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        respelled = Graph.from_edges(
            4, [(2, 0), (0, 3), (3, 2), (2, 1), (1, 0)]
        )
        assert (
            graph_topology(graph).canonical_descriptor()
            == graph_topology(respelled).canonical_descriptor()
        )

    def test_ring_and_general_descriptors_disjoint(self):
        ring_desc = oriented_ring(4).canonical_descriptor()
        graph_desc = graph_topology(Graph.ring(4)).canonical_descriptor()
        assert ring_desc != graph_desc
        assert "flips" in ring_desc and "edges" in graph_desc

    @given(graph=two_edge_connected_graphs())
    @settings(deadline=None, max_examples=40)
    def test_channel_table_well_formed(self, graph):
        """Every directed edge appears exactly once, ports are dense per
        node, and the CSR offsets tile the flat column exactly."""
        topology = graph_topology(graph)
        assert len(topology.channels) == 2 * len(graph.edges)
        seen_src = set()
        for spec in topology.channels:
            assert spec.src not in seen_src  # one outgoing channel per port
            seen_src.add(spec.src)
        degrees = [graph.degree(v) for v in range(graph.n)]
        assert list(topology.port_counts) == degrees
        assert topology.total_ports == sum(degrees)
        slots = {
            topology.port_slot(v, p)
            for v in range(graph.n)
            for p in range(degrees[v])
        }
        assert slots == set(range(topology.total_ports))

    def test_rejects_self_loops_and_multi_edges(self):
        class Raw:
            n = 3
            edges = [(0, 0), (1, 2)]

        with pytest.raises(ConfigurationError):
            graph_topology(Raw())

        class Multi:
            n = 2
            edges = [(0, 1), (1, 0)]

        with pytest.raises(ConfigurationError):
            graph_topology(Multi())


class TestWire:
    def test_wire_rejects_wrong_node_count(self):
        with pytest.raises(ConfigurationError):
            oriented_ring(3).wire([WarmupNode(1), WarmupNode(2)])

    def test_wire_is_reusable(self):
        topology = oriented_ring(3)
        first = topology.wire([WarmupNode(i) for i in [1, 2, 3]])
        second = topology.wire([WarmupNode(i) for i in [1, 2, 3]])
        assert first is not second
        assert len(first.channels) == len(second.channels) == 6


class TestWiringGate:
    def test_channel_wiring_confined_to_topology_package(self):
        """Structural gate (mirrored by the CI grep job): the only
        ``.add_channel(`` call site in the package is Topology.wire —
        every builder and runtime must route through the channel table,
        or the numbering convention stops being decided in one place."""
        import pathlib

        import repro

        src_root = pathlib.Path(repro.__file__).parent
        offenders = []
        for path in sorted(src_root.rglob("*.py")):
            if path.parent.name == "topology":
                continue
            if ".add_channel(" in path.read_text():
                offenders.append(str(path.relative_to(src_root)))
        assert offenders == []
