"""Algorithm 2's internal invariants, and the A1 lag-discipline ablation.

The load-bearing mechanism of Theorem 1 is the "subtle prioritization":
CCW pulses are buffered until ``rho_cw >= ID``.  These tests certify the
induced invariants along every execution (CCW never overtakes CW; the
``rho_cw == ID == rho_ccw`` trigger is unique to the leader) and then
*ablate* the mechanism to show the algorithm actually breaks without it.
"""

import pytest

from repro.core.common import LeaderState
from repro.core.invariants import (
    ALGORITHM2_HOOKS,
    InvariantViolation,
    check_ccw_lag,
    check_leader_event_unique,
)
from repro.core.terminating import TerminatingNode, run_terminating
from repro.simulator.engine import Engine
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import AdversarialLagScheduler, RandomScheduler
from tests.conftest import SCHEDULER_FACTORIES, id_workloads


class TestInvariantsAlongExecutions:
    @pytest.mark.parametrize("workload", sorted(id_workloads()))
    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULER_FACTORIES))
    def test_all_hooks_pass(self, workload, scheduler_name):
        ids = id_workloads()[workload]
        nodes = [TerminatingNode(node_id) for node_id in ids]
        topology = build_oriented_ring(nodes)
        engine = Engine(
            topology.network,
            scheduler=SCHEDULER_FACTORIES[scheduler_name](),
            invariant_hooks=ALGORITHM2_HOOKS,
        )
        result = engine.run()
        assert result.quiescently_terminated

    def test_only_the_max_node_ever_fires_the_trigger(self):
        import random

        rng = random.Random(5)
        for trial in range(15):
            ids = rng.sample(range(1, 200), rng.randint(2, 15))
            outcome = run_terminating(ids, scheduler=RandomScheduler(seed=trial))
            firing = [
                index
                for index, node in enumerate(outcome.nodes)
                if node.term_pulse_sent
            ]
            assert firing == [outcome.expected_leader], ids


class TestInvariantCheckersDetectViolations:
    def test_ccw_lag_checker_detects_corruption(self):
        nodes = [TerminatingNode(2), TerminatingNode(4)]
        topology = build_oriented_ring(nodes)
        engine = Engine(topology.network)
        engine.run()
        nodes[0].rho_ccw = nodes[0].rho_cw + 5
        with pytest.raises(InvariantViolation):
            check_ccw_lag(engine)

    def test_leader_event_checker_detects_false_trigger(self):
        nodes = [TerminatingNode(2), TerminatingNode(4)]
        topology = build_oriented_ring(nodes)
        engine = Engine(topology.network)
        engine.run()
        nodes[0].term_pulse_sent = True  # node 0 is not the max
        with pytest.raises(InvariantViolation):
            check_leader_event_unique(engine)


class TestLagDisciplineAblation:
    """A1: remove the CCW buffering and the algorithm misbehaves."""

    def test_ablated_run_terminates_prematurely_under_adversary(self):
        # With the guard removed, an early CCW pulse can reach a node
        # whose rho_cw is still 0, making rho_ccw > rho_cw fire long
        # before the election finished.
        outcome = run_terminating(
            [1, 5],
            scheduler=AdversarialLagScheduler.lagging_cw(),
            strict_lag=False,
        )
        broken = (
            outcome.leaders != [outcome.expected_leader]
            or outcome.run.quiescence_violations
            or any(output is LeaderState.UNDECIDED for output in outcome.outputs)
            or not outcome.run.all_terminated
        )
        assert broken, "ablation unexpectedly survived the adversary"

    def test_ablated_runs_break_somewhere_in_a_seed_sweep(self):
        import random

        rng = random.Random(0)
        failures = 0
        for trial in range(30):
            ids = rng.sample(range(1, 40), rng.randint(2, 8))
            outcome = run_terminating(
                ids,
                scheduler=AdversarialLagScheduler.lagging_cw(),
                strict_lag=False,
            )
            correct = (
                outcome.leaders == [outcome.expected_leader]
                and not outcome.run.quiescence_violations
                and outcome.total_pulses == outcome.theorem1_message_bound
            )
            if not correct:
                failures += 1
        assert failures > 0, "the lag discipline appears not load-bearing?"

    def test_unablated_algorithm_survives_the_same_adversary(self):
        # The very schedule that breaks the ablation is harmless to the
        # real algorithm — the buffering is exactly what absorbs it.
        outcome = run_terminating(
            [1, 5], scheduler=AdversarialLagScheduler.lagging_cw(), strict_lag=True
        )
        assert outcome.leaders == [outcome.expected_leader]
        assert outcome.run.quiescently_terminated
