"""Differential tests: the batched fast path is observationally exact.

The batched engine coalesces whole FIFO runs into single scheduler steps
(``docs/PERFORMANCE.md``).  Every batched execution corresponds to a
legal unbatched schedule, and the theorems' observables — leader set,
final states and outputs, termination order, exact per-port message
counts — are schedule-invariant, so batched and unbatched runs must
agree on all of them for *any* pair of schedulers.  These tests check
exactly that over a few hundred randomized (ids, scheduler) cases per
algorithm, plus the fault-injection fallback and the counting-channel
primitive itself.
"""

import random

import pytest

from repro.core.nonoriented import IdScheme, run_nonoriented
from repro.core.terminating import TerminatingNode, run_terminating
from repro.core.warmup import run_warmup
from repro.exceptions import ConfigurationError
from repro.simulator.channel import Channel
from repro.simulator.engine import Engine
from repro.simulator.faults import FaultPlan, apply_fault_plan, total_faults
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import all_standard_schedulers

SCHEDULER_NAMES = sorted(all_standard_schedulers())

# Each case draws its own ring size, IDs, and scheduler from a per-case
# seed, so failures name a single replayable case.
N_CASES_PER_ALGORITHM = 90
N_CASES_NONORIENTED = 60


def _make_case(case: int, max_n: int = 8, max_id: int = 60):
    """Seeded (ids, scheduler_name, seed) tuple for one differential case."""
    rng = random.Random(0xD1FF ^ case)
    n = rng.randint(2, max_n)
    ids = rng.sample(range(1, max_id + 1), n)
    name = rng.choice(SCHEDULER_NAMES)
    return ids, name, rng.randrange(2**31)


def _scheduler(name: str, seed: int):
    """A fresh scheduler instance (schedulers are stateful, one per run)."""
    return all_standard_schedulers(seed=seed)[name]


@pytest.mark.parametrize("case", range(N_CASES_PER_ALGORITHM))
def test_warmup_batched_matches_unbatched(case):
    ids, name, seed = _make_case(case)
    slow = run_warmup(ids, scheduler=_scheduler(name, seed))
    fast = run_warmup(ids, scheduler=_scheduler(name, seed), batched=True)
    assert fast.leaders == slow.leaders
    assert fast.states == slow.states
    assert [node.rho_cw for node in fast.nodes] == [
        node.rho_cw for node in slow.nodes
    ]
    assert fast.total_pulses == slow.total_pulses == len(ids) * max(ids)
    assert dict(fast.run.trace.sends_by_port) == dict(slow.run.trace.sends_by_port)
    assert dict(fast.run.trace.recvs_by_port) == dict(slow.run.trace.recvs_by_port)
    assert fast.run.quiescent and slow.run.quiescent


@pytest.mark.parametrize("case", range(N_CASES_PER_ALGORITHM))
def test_terminating_batched_matches_unbatched(case):
    ids, name, seed = _make_case(case)
    slow = run_terminating(ids, scheduler=_scheduler(name, seed))
    fast = run_terminating(ids, scheduler=_scheduler(name, seed), batched=True)
    assert fast.leaders == slow.leaders == [slow.expected_leader]
    assert fast.outputs == slow.outputs
    assert fast.run.termination_order == slow.run.termination_order
    assert (
        fast.total_pulses
        == slow.total_pulses
        == len(ids) * (2 * max(ids) + 1)
    )
    assert fast.run.trace.total_received == slow.run.trace.total_received
    assert dict(fast.run.trace.sends_by_port) == dict(slow.run.trace.sends_by_port)
    assert dict(fast.run.trace.recvs_by_port) == dict(slow.run.trace.recvs_by_port)
    assert fast.run.quiescently_terminated and slow.run.quiescently_terminated


@pytest.mark.parametrize("case", range(N_CASES_NONORIENTED))
def test_nonoriented_batched_matches_unbatched(case):
    ids, name, seed = _make_case(case, max_n=7)
    rng = random.Random(seed)
    flips = [rng.random() < 0.5 for _ in ids]
    scheme = IdScheme.DOUBLED if case % 3 == 0 else IdScheme.SUCCESSOR
    slow = run_nonoriented(
        ids, flips=flips, scheme=scheme, scheduler=_scheduler(name, seed)
    )
    fast = run_nonoriented(
        ids,
        flips=flips,
        scheme=scheme,
        scheduler=_scheduler(name, seed),
        batched=True,
    )
    assert fast.leaders == slow.leaders
    assert fast.states == slow.states
    assert fast.cw_port_labels == slow.cw_port_labels
    assert fast.orientation_consistent == slow.orientation_consistent
    assert fast.total_pulses == slow.total_pulses
    assert dict(fast.run.trace.sends_by_port) == dict(slow.run.trace.sends_by_port)
    assert dict(fast.run.trace.recvs_by_port) == dict(slow.run.trace.recvs_by_port)


class TestFaultFallback:
    """Faulty channels never enter counting mode: the batched engine runs
    them per-pulse, making faulty batched runs *identical* (not merely
    equivalent) to faulty unbatched runs under the same plan."""

    def _run(self, ids, plan, batched):
        nodes = [TerminatingNode(node_id) for node_id in ids]
        topology = build_oriented_ring(nodes)
        apply_fault_plan(topology.network, plan)
        result = Engine(
            topology.network, max_steps=200_000, batched=batched
        ).run()
        return nodes, result, topology.network

    @pytest.mark.parametrize("seed", range(8))
    def test_faulty_runs_identical_batched_or_not(self, seed):
        ids = [4, 9, 2, 7]
        plan = FaultPlan(drop_rate=0.15, duplicate_rate=0.15, seed=seed)
        nodes_a, run_a, net_a = self._run(ids, plan, batched=False)
        nodes_b, run_b, net_b = self._run(ids, plan, batched=True)
        assert not any(channel.counting for channel in net_b.channels)
        assert total_faults(net_a) == total_faults(net_b)
        assert run_a.steps == run_b.steps
        assert run_a.total_sent == run_b.total_sent
        assert run_a.termination_order == run_b.termination_order
        assert run_a.quiescence_violations == run_b.quiescence_violations
        assert [node.state for node in nodes_a] == [
            node.state for node in nodes_b
        ]
        assert [node.rho_cw for node in nodes_a] == [
            node.rho_cw for node in nodes_b
        ]
        assert [node.rho_ccw for node in nodes_a] == [
            node.rho_ccw for node in nodes_b
        ]

    def test_clean_channels_still_batch_alongside_nothing_faulty(self):
        # Sanity: with no fault plan the same rings do enable counting.
        nodes = [TerminatingNode(node_id) for node_id in [4, 9, 2, 7]]
        topology = build_oriented_ring(nodes)
        Engine(topology.network, batched=True)
        assert all(channel.counting for channel in topology.network.channels)


class TestCountingChannel:
    """The counting queue is seq-exact: schedulers and the engine cannot
    tell it apart from the tuple deque it replaces."""

    def _channel(self):
        channel = Channel(channel_id=0, src=(0, 0), dst=(1, 1))
        channel.enable_counting()
        return channel

    def test_requires_defective(self):
        channel = Channel(channel_id=0, src=(0, 0), dst=(1, 1), defective=False)
        with pytest.raises(ConfigurationError):
            channel.enable_counting()

    def test_requires_empty_queue(self):
        channel = Channel(channel_id=0, src=(0, 0), dst=(1, 1))
        channel.enqueue(send_seq=1)
        with pytest.raises(ConfigurationError):
            channel.enable_counting()

    def test_dequeue_order_matches_tuple_queue(self):
        counting = self._channel()
        plain = Channel(channel_id=1, src=(0, 0), dst=(1, 1))
        for seq in [3, 4, 5, 9, 10]:
            counting.enqueue(send_seq=seq)
            plain.enqueue(send_seq=seq)
        assert counting.pending == plain.pending == 5
        while plain.pending:
            assert counting.peek_send_seq() == plain.peek_send_seq()
            assert counting.dequeue() == plain.dequeue()
        assert not counting and not plain

    def test_contiguous_runs_merge(self):
        channel = self._channel()
        channel.enqueue_many(first_seq=10, count=3)
        channel.enqueue_many(first_seq=13, count=2)
        assert channel.pending == 5
        assert channel.drain() == 5
        assert channel.pending == 0

    def test_partial_dequeue_then_drain(self):
        channel = self._channel()
        channel.enqueue_many(first_seq=1, count=4)
        assert channel.dequeue() == (1, None)
        assert channel.peek_send_seq() == 2
        assert channel.drain() == 3
        assert not channel.pending

    def test_drain_works_on_plain_defective_queue(self):
        channel = Channel(channel_id=0, src=(0, 0), dst=(1, 1))
        channel.enqueue(send_seq=1)
        channel.enqueue(send_seq=2)
        assert channel.drain() == 2
        assert not channel.pending

    def test_drain_refuses_content_channels(self):
        channel = Channel(channel_id=0, src=(0, 0), dst=(1, 1), defective=False)
        channel.enqueue(send_seq=1, content="payload")
        with pytest.raises(ConfigurationError):
            channel.drain()


class TestBatchedEngineModes:
    def test_record_events_disables_counting(self):
        nodes = [TerminatingNode(node_id) for node_id in [3, 5, 2]]
        topology = build_oriented_ring(nodes)
        engine = Engine(topology.network, batched=True, record_events=True)
        assert not any(channel.counting for channel in topology.network.channels)
        result = engine.run()
        assert result.quiescently_terminated
        assert len(result.trace.delivery_records) == result.trace.total_received

    def test_batched_strict_quiescence_passes_on_clean_run(self):
        nodes = [TerminatingNode(node_id) for node_id in [6, 11, 4, 8]]
        topology = build_oriented_ring(nodes)
        result = Engine(
            topology.network, batched=True, strict_quiescence=True
        ).run()
        assert result.quiescently_terminated
