"""The public one-call front doors (`repro.core.election`)."""

import pytest

from repro.core.common import LeaderState
from repro.core.election import (
    elect_leader_anonymous,
    elect_leader_nonoriented,
    elect_leader_oriented,
)
from repro.core.nonoriented import IdScheme


class TestOrientedFrontDoor:
    def test_report_fields(self):
        report = elect_leader_oriented([3, 7, 5, 2])
        assert report.setting == "oriented"
        assert report.n == 4
        assert report.leader == 1
        assert report.succeeded
        assert report.terminated
        assert report.quiescent
        assert report.total_pulses == report.claimed_bound == 60
        assert report.states[1] is LeaderState.LEADER

    def test_quickstart_docstring_example(self):
        # The example in repro/__init__.py must stay true.
        report = elect_leader_oriented([3, 7, 5, 2])
        assert report.leader == 1
        assert report.total_pulses == 4 * (2 * 7 + 1)


class TestNonOrientedFrontDoor:
    def test_report_fields(self):
        report = elect_leader_nonoriented(
            [3, 7, 5, 2], flips=[True, False, True, False]
        )
        assert report.setting == "nonoriented"
        assert report.leader == 1
        assert not report.terminated  # stabilizing only
        assert report.quiescent
        assert report.total_pulses == report.claimed_bound == 60
        assert report.cw_ports is not None
        assert all(port in (0, 1) for port in report.cw_ports)

    def test_doubled_scheme_bound(self):
        report = elect_leader_nonoriented([3, 7], scheme=IdScheme.DOUBLED)
        assert report.claimed_bound == 2 * (4 * 7 - 1)
        assert report.total_pulses == report.claimed_bound


class TestAnonymousFrontDoor:
    def test_report_fields_on_success(self):
        report = elect_leader_anonymous(8, c=2.0, seed=42)
        assert report.setting == "anonymous"
        assert report.n == 8
        assert not report.terminated
        assert report.quiescent
        assert report.claimed_bound is None  # only an asymptotic claim
        if report.succeeded:
            assert report.states.count(LeaderState.LEADER) == 1

    def test_failure_reports_no_leader(self):
        # Find a failing seed at weak confidence and check the report
        # degrades gracefully rather than lying.  Pre-screen seeds by the
        # IDs they will sample (the geometric tail makes unscreened
        # elections arbitrarily expensive).
        import random

        from repro.ids.sampling import GeometricIdSampler, max_is_unique

        sampler = GeometricIdSampler(c=0.5)
        for seed in range(300):
            ids = sampler.sample_many(6, random.Random(seed))
            if max(ids) > 500 or max_is_unique(ids):
                continue  # too expensive, or destined to succeed
            report = elect_leader_anonymous(6, c=0.5, seed=seed)
            assert not report.succeeded
            assert report.leader is None
            break
        else:
            pytest.skip("no affordable failing seed found at c=0.5")
