"""Shared fixtures and helpers for the test-suite.

The paper's correctness statements are universally quantified over
asynchronous schedules and ID assignments; these helpers centralize the
sweeps (scheduler families, ID workloads, port-flip patterns) that the
suite runs every algorithm through.
"""

from __future__ import annotations

import os
import random
import sys
from typing import Callable, Dict, List, Sequence

import pytest
from hypothesis import HealthCheck, settings

# Let test modules import the shared strategy module (tests/strategies.py)
# without packaging the test tree.
sys.path.insert(0, os.path.dirname(__file__))

from repro.simulator.scheduler import (
    AdversarialLagScheduler,
    GlobalFifoScheduler,
    LifoScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)

# Property-based tests scale their budget via HYPOTHESIS_PROFILE:
# "ci" keeps the pipeline fast, "dev" is the local default, "thorough"
# is the overnight setting (ci.yml's verify-smoke job runs "ci").
settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=60, deadline=None)
settings.register_profile(
    "thorough",
    max_examples=500,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

#: Factories, not instances: schedulers are stateful and single-use.
SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "global_fifo": GlobalFifoScheduler,
    "lifo": LifoScheduler,
    "random0": lambda: RandomScheduler(seed=0),
    "random1": lambda: RandomScheduler(seed=1),
    "random2": lambda: RandomScheduler(seed=2),
    "round_robin": RoundRobinScheduler,
    "lag_ccw": AdversarialLagScheduler.lagging_ccw,
    "lag_cw": AdversarialLagScheduler.lagging_cw,
}


@pytest.fixture(params=sorted(SCHEDULER_FACTORIES))
def scheduler_name(request) -> str:
    """Parametrizes a test over every scheduler family."""
    return request.param


@pytest.fixture
def make_scheduler(scheduler_name) -> Callable[[], Scheduler]:
    """A factory producing fresh schedulers of the parametrized family."""
    return SCHEDULER_FACTORIES[scheduler_name]


def id_workloads() -> Dict[str, List[int]]:
    """Representative ID assignments (clockwise order) for ring sweeps.

    Covers the shapes that historically break ring elections: sorted both
    ways (Chang-Roberts worst/best cases), max adjacent to min, sparse
    IDs much larger than n, and degenerate sizes.
    """
    rng = random.Random(20240704)
    return {
        "singleton": [5],
        "pair": [2, 9],
        "pair_reversed": [9, 2],
        "sorted_ascending": list(range(1, 9)),
        "sorted_descending": list(range(8, 0, -1)),
        "max_first": [10, 1, 2, 3, 4],
        "max_last": [1, 2, 3, 4, 10],
        "alternating": [2, 7, 1, 9, 4, 8, 3],
        "sparse": [17, 403, 52, 288],
        "random_mid": rng.sample(range(1, 60), 12),
        "tight": [3, 1, 2],  # IDmax == n
    }


@pytest.fixture(params=sorted(id_workloads()))
def ids(request) -> List[int]:
    """Parametrizes a test over every ID workload."""
    return id_workloads()[request.param]


def flip_samples(n: int, count: int = 8, seed: int = 7) -> List[List[bool]]:
    """A deterministic sample of port-flip patterns for an n-ring."""
    rng = random.Random(seed)
    patterns = [[False] * n, [True] * n]
    if n >= 1:
        one_hot = [False] * n
        one_hot[rng.randrange(n)] = True
        patterns.append(one_hot)
    while len(patterns) < count:
        patterns.append([rng.random() < 0.5 for _ in range(n)])
    return patterns
