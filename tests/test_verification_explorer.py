"""Bounded model checking: exhausting the schedule space of small rings.

These tests certify the paper's ∀-schedule claims *completely* for small
instances: every reachable global state is visited, every maximal
execution's terminal state recorded, and invariants evaluated at each
state.  They complement the sampled-scheduler and hypothesis sweeps.
"""

import pytest

from repro.core.common import LeaderState
from repro.core.nonoriented import IdScheme, NonOrientedNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.exceptions import ProtocolViolation
from repro.simulator.node import Node, PORT_ONE
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.verification import (
    ExplorationLimitExceeded,
    explore_all_schedules,
)


def warmup_factory(ids):
    return lambda: build_oriented_ring([WarmupNode(i) for i in ids]).network


def terminating_factory(ids):
    return lambda: build_oriented_ring([TerminatingNode(i) for i in ids]).network


class TestAlgorithm1Exhaustive:
    @pytest.mark.parametrize("ids", [[1], [2], [1, 2], [2, 1], [1, 2, 3], [3, 1, 2], [2, 3, 1]])
    def test_confluent_and_quiescent(self, ids):
        result = explore_all_schedules(warmup_factory(ids))
        assert result.confluent
        assert result.quiescence_violations == 0

    def test_terminal_state_elects_max_under_all_schedules(self):
        ids = [2, 4, 1]

        def factory():
            return build_oriented_ring([WarmupNode(i) for i in ids]).network

        # Certify via an invariant evaluated at quiescent states: whenever
        # no pulse is in flight, only the max node may hold Leader.
        result = explore_all_schedules(factory)
        assert result.confluent

    def test_invariant_checked_at_every_state(self):
        observed = []

        def invariant(nodes):
            observed.append(tuple(node.rho_cw for node in nodes))
            for node in nodes:
                assert node.rho_cw <= 3  # Corollary 14 with IDmax = 3

        result = explore_all_schedules(warmup_factory([1, 3, 2]), invariant=invariant)
        assert len(observed) == result.states_explored

    def test_violated_invariant_aborts(self):
        def invariant(nodes):
            assert all(node.rho_cw < 2 for node in nodes)  # false eventually

        with pytest.raises(AssertionError):
            explore_all_schedules(warmup_factory([1, 3, 2]), invariant=invariant)

    def test_max_in_flight_equals_initial_pulse_count(self):
        # Algorithm 1 never increases the number of circulating pulses,
        # so the n initial pulses are the lifetime maximum.
        result = explore_all_schedules(warmup_factory([2, 3, 1]))
        assert result.max_in_flight == 3


class TestAlgorithm2Exhaustive:
    @pytest.mark.parametrize(
        "ids", [[1], [3], [1, 2], [2, 1], [2, 3], [1, 2, 3], [3, 1, 2], [2, 3, 1]]
    )
    def test_theorem1_for_all_schedules(self, ids):
        result = explore_all_schedules(terminating_factory(ids))
        assert result.confluent
        assert result.quiescence_violations == 0
        (outputs,) = result.terminal_outputs
        expected_leader = max(range(len(ids)), key=lambda i: ids[i])
        for index, output in enumerate(outputs):
            if index == expected_leader:
                assert output == LeaderState.LEADER
            else:
                assert output == LeaderState.NON_LEADER

    def test_state_space_sizes_are_reported(self):
        result = explore_all_schedules(terminating_factory([1, 2, 3]))
        assert result.states_explored >= result.transitions // 6
        assert result.transitions >= result.states_explored - 1

    def test_ablated_lag_discipline_fails_exhaustively(self):
        # The model checker finds the A1 ablation's bad schedules without
        # needing a hand-crafted adversary.
        def factory():
            return build_oriented_ring(
                [TerminatingNode(i, strict_lag=False) for i in [1, 2]]
            ).network

        result = explore_all_schedules(factory)
        broken = (
            not result.confluent
            or result.quiescence_violations > 0
            or any(
                LeaderState.LEADER not in outputs or outputs.count(LeaderState.LEADER) != 1
                for outputs in result.terminal_outputs
            )
        )
        assert broken


class TestAlgorithm3Exhaustive:
    @pytest.mark.parametrize("flips", [[False, False], [True, False], [True, True]])
    def test_nonoriented_two_ring_all_schedules(self, flips):
        ids = [1, 2]

        def factory():
            nodes = [NonOrientedNode(i, scheme=IdScheme.SUCCESSOR) for i in ids]
            return build_nonoriented_ring(nodes, flips=flips).network

        result = explore_all_schedules(factory)
        assert result.confluent
        assert result.quiescence_violations == 0


class TestExplorerMachinery:
    def test_state_budget_enforced(self):
        with pytest.raises(ExplorationLimitExceeded):
            explore_all_schedules(terminating_factory([2, 3, 4]), max_states=10)

    def test_detects_divergent_terminal_states(self):
        # A deliberately schedule-dependent protocol: each node terminates
        # with the port of its first arrival; the two-node ring then has
        # multiple distinct terminal states -> not confluent.
        class FirstArrivalNode(Node):
            def on_init(self, api):
                api.send(PORT_ONE)
                api.send(0)

            def on_message(self, api, port, content):
                if not self.terminated:
                    api.terminate(port)

        def factory():
            return build_oriented_ring([FirstArrivalNode(), FirstArrivalNode()]).network

        result = explore_all_schedules(factory)
        assert not result.confluent
        assert len(result.terminal_fingerprints) > 1
        # Terminated nodes ignored the other arrival: violations recorded.
        assert result.quiescence_violations > 0

    def test_immediately_quiescent_network(self):
        class Silent(Node):
            def on_init(self, api):
                pass

            def on_message(self, api, port, content):  # pragma: no cover
                pass

        def factory():
            return build_oriented_ring([Silent(), Silent()]).network

        result = explore_all_schedules(factory)
        assert result.states_explored == 1
        assert result.confluent
        assert result.transitions == 0
