"""Correlated fault groups: validation, edge semantics, backend identity.

:class:`~repro.faults.model.FaultGroup` binds member clauses (crash,
relative drops, burst window) to one anchor and one shared trigger —
an absolute round or a rho/sigma threshold crossing.  These tests pin
the clause language itself (validation, the fire-round predicates, the
NodeCrash edge cases the grouped compilers inherit) and the contract
that matters downstream: grouped faults are **bit-identical across
fleet backends** and **stable under re-sharding**, because every roll
and every fire round is a pure function of the semantics coordinates.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.accel import jit_available
from repro.core.warmup import WarmupNode
from repro.exceptions import ConfigurationError
from repro.faults import apply_fault_model, merge_events
from repro.faults.model import (
    FaultBurst,
    FaultGroup,
    FaultModel,
    GroupDrop,
    NodeCrash,
)
from repro.simulator.fleet import HAVE_NUMPY
from repro.simulator.ring import build_oriented_ring
from repro.verification.statistical import run_recovery_shard

from strategies import fault_groups

FLEET_BACKENDS = (
    ["python"]
    + (["numpy"] if HAVE_NUMPY else [])
    + (["compiled"] if jit_available() else [])
)


class TestGroupValidation:
    def test_exactly_one_trigger_required(self):
        with pytest.raises(ConfigurationError, match="exactly one trigger"):
            FaultGroup(anchor=0, crash=True)
        with pytest.raises(ConfigurationError, match="exactly one trigger"):
            FaultGroup(
                anchor=0, at_round=2, trigger_field="rho",
                trigger_threshold=1, crash=True,
            )

    def test_threshold_trigger_validates(self):
        with pytest.raises(ConfigurationError, match="trigger_field"):
            FaultGroup(
                anchor=0, trigger_field="tau", trigger_threshold=1, crash=True
            )
        with pytest.raises(ConfigurationError, match="trigger_threshold"):
            FaultGroup(
                anchor=0, trigger_field="rho", trigger_threshold=0, crash=True
            )
        with pytest.raises(ConfigurationError, match="one trigger"):
            FaultGroup(anchor=0, trigger_threshold=2, crash=True)

    def test_at_round_is_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            FaultGroup(anchor=0, at_round=0, crash=True)
        FaultGroup(anchor=0, at_round=1, crash=True)  # the boundary is legal

    def test_restart_requires_crash(self):
        with pytest.raises(ConfigurationError, match="nothing to restart"):
            FaultGroup(anchor=0, at_round=1, restart_after=2,
                       drops=(GroupDrop(),))
        with pytest.raises(ConfigurationError, match="restart_after"):
            FaultGroup(anchor=0, at_round=1, crash=True, restart_after=0)

    def test_at_least_one_member_clause(self):
        with pytest.raises(ConfigurationError, match="at least one member"):
            FaultGroup(anchor=0, at_round=1)

    def test_anchor_nonnegative(self):
        with pytest.raises(ConfigurationError, match="anchor"):
            FaultGroup(anchor=-1, at_round=1, crash=True)

    def test_group_drop_validates(self):
        with pytest.raises(ConfigurationError, match="direction"):
            GroupDrop(direction="sideways")
        with pytest.raises(ConfigurationError, match="offset"):
            GroupDrop(offset=-1)
        with pytest.raises(ConfigurationError, match="count"):
            GroupDrop(count=0)

    def test_model_burst_conflicts_with_group_bursts(self):
        group = FaultGroup(
            anchor=0, at_round=1, burst=FaultBurst(start=1, length=2)
        )
        with pytest.raises(ConfigurationError):
            FaultModel(
                drop_rate=0.5, burst=FaultBurst(start=1, length=2),
                groups=(group,),
            )
        # Groups taking over the gating is the valid spelling.
        model = FaultModel(drop_rate=0.5, groups=(group,))
        assert not model.is_noop

    def test_groups_are_fleet_only(self):
        topology = build_oriented_ring([WarmupNode(1), WarmupNode(2)])
        model = FaultModel(
            groups=(FaultGroup(anchor=0, at_round=1, crash=True),)
        )
        with pytest.raises(ConfigurationError, match="fleet"):
            apply_fault_model(topology.network, model)

    def test_groups_disable_lap_skips(self):
        """Threshold triggers must observe every round, so the compiled
        direction adapter runs skip-free whenever groups are present."""
        from repro.faults.fleet import DirectionFaults

        grouped = FaultModel(
            groups=(FaultGroup(anchor=0, at_round=1, crash=True),)
        )
        compiled = DirectionFaults(grouped, 4, "cw", 1, 0, "warmup")
        assert not compiled.allow_skips
        clean = DirectionFaults(
            FaultModel(drop_rate=0.1), 4, "cw", 1, 0, "warmup"
        )
        assert clean.allow_skips


class TestGroupFirePredicates:
    def test_down_and_restart_track_the_fire_round(self):
        group = FaultGroup(
            anchor=1, trigger_field="sigma", trigger_threshold=2,
            crash=True, restart_after=2,
        )
        fire = 5
        assert [group.down(r, fire) for r in range(4, 9)] == [
            False, True, True, False, False,
        ]
        assert group.restarts_at(7, fire) and not group.restarts_at(6, fire)

    def test_permanent_group_crash_never_restarts(self):
        group = FaultGroup(anchor=0, at_round=3, crash=True)
        assert group.down(10**6, 3) and not group.restarts_at(10**6, 3)

    def test_burst_window_is_relative_to_fire(self):
        group = FaultGroup(
            anchor=0, at_round=1, burst=FaultBurst(start=1, length=2)
        )
        fire = 4
        assert [group.burst_active(r, fire) for r in range(3, 8)] == [
            False, True, True, False, False,
        ]


class TestNodeCrashEdgeSemantics:
    """The edge cases the grouped compilers inherit from NodeCrash."""

    def test_round_zero_crash_rejected(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            NodeCrash(node=0, at_round=0)

    def test_crash_at_first_round_is_down_immediately(self):
        crash = NodeCrash(node=0, at_round=1)
        assert crash.down(1) and crash.down(10**6)
        assert not crash.restarts_at(1)

    def test_restart_boundary_is_exact(self):
        crash = NodeCrash(node=0, at_round=4, restart_after=3)
        assert not crash.down(3)
        assert crash.down(4) and crash.down(6)
        assert not crash.down(7)
        assert crash.restarts_at(7)
        assert not crash.restarts_at(6) and not crash.restarts_at(8)

    @pytest.mark.parametrize("backend", FLEET_BACKENDS)
    def test_crash_at_round_one_classifies_identically(self, backend):
        faults = FaultModel(crashes=(NodeCrash(node=1, at_round=1),))
        counts, non_rec, events = run_recovery_shard(
            "nonoriented", 4, 30, list(range(8)),
            faults=faults, backend=backend,
        )
        ref_counts, ref_non_rec, ref_events = run_recovery_shard(
            "nonoriented", 4, 30, list(range(8)),
            faults=faults, backend="python",
        )
        assert (counts, non_rec, events) == (ref_counts, ref_non_rec, ref_events)

    @pytest.mark.parametrize("backend", FLEET_BACKENDS)
    def test_restart_beyond_horizon_equals_permanent(self, backend):
        """A restart scheduled past every reachable round must behave as
        a permanent crash — the reboot never lands inside the run."""
        horizon = 10**6
        late = FaultModel(
            crashes=(NodeCrash(node=1, at_round=3, restart_after=horizon),)
        )
        forever = FaultModel(crashes=(NodeCrash(node=1, at_round=3),))
        late_run = run_recovery_shard(
            "nonoriented", 4, 30, list(range(6)),
            faults=late, backend=backend,
        )
        forever_run = run_recovery_shard(
            "nonoriented", 4, 30, list(range(6)),
            faults=forever, backend=backend,
        )
        late_counts, late_non_rec, late_events = late_run
        forever_counts, forever_non_rec, forever_events = forever_run
        assert late_counts == forever_counts
        assert late_non_rec == forever_non_rec
        assert late_events.get("restarts", 0) == 0
        assert forever_events.get("restarts", 0) == 0

    def test_crash_restart_deep_in_run_is_backend_identical(self):
        """A crash-restart timed where a clean run would be lap-skipping:
        the fault disables skips, and every backend must agree on the
        resulting classification bit for bit."""
        faults = FaultModel(
            crashes=(NodeCrash(node=2, at_round=9, restart_after=4),)
        )
        runs = [
            run_recovery_shard(
                "nonoriented", 5, 40, list(range(8)),
                faults=faults, backend=backend,
            )
            for backend in FLEET_BACKENDS
        ]
        for other in runs[1:]:
            assert other == runs[0]
        assert runs[0][2]["restarts"] > 0


def _grouped_model() -> FaultModel:
    """One model exercising every grouped member clause at once."""
    return FaultModel(
        drop_rate=0.5,
        seed=3,
        groups=(
            FaultGroup(
                anchor=1,
                trigger_field="sigma",
                trigger_threshold=2,
                crash=True,
                restart_after=3,
                drops=(GroupDrop(offset=1, node_offset=1, direction="ccw"),),
                burst=FaultBurst(start=1, length=2),
            ),
        ),
    )


class TestGroupedBackendConformance:
    @pytest.mark.parametrize("backend", FLEET_BACKENDS)
    def test_grouped_model_matches_python_reference(self, backend):
        reference = run_recovery_shard(
            "nonoriented", 5, 40, list(range(10)),
            faults=_grouped_model(), backend="python",
        )
        observed = run_recovery_shard(
            "nonoriented", 5, 40, list(range(10)),
            faults=_grouped_model(), backend=backend,
        )
        assert observed == reference
        counts, _non_rec, events = reference
        assert sum(counts.values()) == 10
        assert events  # the group actually fired somewhere

    @pytest.mark.parametrize("trigger_field", ["rho", "sigma"])
    def test_threshold_triggers_agree_across_backends(self, trigger_field):
        faults = FaultModel(
            groups=(
                FaultGroup(
                    anchor=0,
                    trigger_field=trigger_field,
                    trigger_threshold=1,
                    crash=True,
                    restart_after=2,
                ),
            )
        )
        runs = [
            run_recovery_shard(
                "nonoriented", 4, 30, list(range(8)),
                faults=faults, backend=backend,
            )
            for backend in FLEET_BACKENDS
        ]
        for other in runs[1:]:
            assert other == runs[0]

    @given(group=fault_groups(max_anchor=3))
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_groups_are_backend_identical(self, group):
        model = FaultModel(
            drop_rate=0.4 if group.burst is not None else 0.0,
            seed=2,
            groups=(group,),
        )
        runs = [
            run_recovery_shard(
                "nonoriented", 4, 24, list(range(4)),
                faults=model, backend=backend,
            )
            for backend in FLEET_BACKENDS
        ]
        for other in runs[1:]:
            assert other == runs[0]


class TestGroupedShardStability:
    def test_resharding_sums_to_the_single_pass(self):
        """Any partition of the index range re-derives the one-pass
        counts, sorted non-recovered list, and merged event totals —
        the property the farm's fixed-range shards rely on."""
        model = _grouped_model()
        whole = run_recovery_shard(
            "nonoriented", 5, 40, list(range(12)), faults=model,
        )
        counts: dict = {}
        non_rec: list = []
        events: dict = {}
        for chunk in ([0, 1, 2], [3], [4, 5, 6, 7], [8, 9, 10, 11]):
            c, nr, ev = run_recovery_shard(
                "nonoriented", 5, 40, chunk, faults=model,
            )
            counts = {
                key: counts.get(key, 0) + value for key, value in c.items()
            }
            non_rec.extend(nr)
            events = merge_events(events, ev)
        assert counts == whole[0]
        assert sorted(non_rec) == sorted(whole[1])
        assert events == whole[2]

    def test_block_size_does_not_change_grouped_results(self):
        model = _grouped_model()
        small = run_recovery_shard(
            "nonoriented", 5, 40, list(range(10)), faults=model, block_size=2,
        )
        large = run_recovery_shard(
            "nonoriented", 5, 40, list(range(10)), faults=model, block_size=64,
        )
        assert small == large
