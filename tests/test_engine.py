"""Unit tests for the discrete-event engine: runs, limits, violations."""

import pytest

from repro.exceptions import (
    ProtocolViolation,
    QuiescentTerminationViolation,
    SimulationLimitExceeded,
)
from repro.simulator.engine import Engine, run_to_quiescence
from repro.simulator.node import Node, PORT_ONE, PORT_ZERO
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import GlobalFifoScheduler


class SilentNode(Node):
    """Sends nothing, reacts to nothing."""

    def on_init(self, api):
        pass

    def on_message(self, api, port, content):
        pass


class CountAndStopNode(Node):
    """Sends one CW pulse at init; absorbs everything it receives."""

    def __init__(self):
        super().__init__()
        self.received = 0

    def on_init(self, api):
        api.send(PORT_ONE)

    def on_message(self, api, port, content):
        self.received += 1


class ForeverNode(Node):
    """Relays every pulse forever: a deliberate livelock."""

    def on_init(self, api):
        api.send(PORT_ONE)

    def on_message(self, api, port, content):
        api.send(PORT_ONE)


class EagerTerminator(Node):
    """Terminates upon its first received pulse, sending its own first."""

    def on_init(self, api):
        api.send(PORT_ONE)

    def on_message(self, api, port, content):
        api.terminate("done")


class SendAfterTerminateNode(Node):
    def on_init(self, api):
        api.terminate("bye")
        api.send(PORT_ONE)

    def on_message(self, api, port, content):
        pass


class TestBasicRuns:
    def test_empty_network_is_immediately_quiescent(self):
        topology = build_oriented_ring([SilentNode(), SilentNode()])
        result = run_to_quiescence(topology.network)
        assert result.quiescent
        assert result.steps == 0
        assert result.total_sent == 0

    def test_one_pulse_one_delivery(self):
        nodes = [CountAndStopNode(), CountAndStopNode()]
        topology = build_oriented_ring(nodes)
        result = run_to_quiescence(topology.network)
        assert result.total_sent == 2
        assert result.steps == 2
        assert nodes[0].received == 1
        assert nodes[1].received == 1

    def test_engine_is_single_use(self):
        topology = build_oriented_ring([SilentNode()])
        engine = Engine(topology.network)
        engine.run()
        with pytest.raises(ProtocolViolation):
            engine.run()

    def test_outputs_and_termination_flags(self):
        nodes = [EagerTerminator(), EagerTerminator()]
        topology = build_oriented_ring(nodes)
        result = run_to_quiescence(topology.network)
        assert result.outputs == ["done", "done"]
        assert result.all_terminated
        assert sorted(result.termination_order) == [0, 1]


class TestLimits:
    def test_livelock_hits_step_limit(self):
        topology = build_oriented_ring([ForeverNode(), ForeverNode()])
        engine = Engine(topology.network, max_steps=500)
        with pytest.raises(SimulationLimitExceeded) as excinfo:
            engine.run()
        assert excinfo.value.steps == 500


class TestTerminationSemantics:
    def test_send_after_terminate_is_a_protocol_violation(self):
        topology = build_oriented_ring([SendAfterTerminateNode()])
        with pytest.raises(ProtocolViolation):
            run_to_quiescence(topology.network)

    def test_delivery_to_terminated_node_recorded_as_violation(self):
        # Node 0 terminates immediately; node 1's init pulse then arrives.
        class InstantTerminator(Node):
            def on_init(self, api):
                api.terminate("early")

            def on_message(self, api, port, content):  # pragma: no cover
                raise AssertionError("terminated nodes never see messages")

        nodes = [InstantTerminator(), CountAndStopNode()]
        topology = build_oriented_ring(nodes)
        result = run_to_quiescence(topology.network)
        assert result.quiescent
        assert result.quiescence_violations  # the stranded pulse is recorded
        assert result.trace.ignored_deliveries == 1
        assert not result.quiescently_terminated

    def test_strict_mode_raises_on_violation(self):
        class InstantTerminator(Node):
            def on_init(self, api):
                api.terminate("early")

            def on_message(self, api, port, content):  # pragma: no cover
                pass

        nodes = [InstantTerminator(), CountAndStopNode()]
        topology = build_oriented_ring(nodes)
        engine = Engine(topology.network, strict_quiescence=True)
        with pytest.raises(QuiescentTerminationViolation):
            engine.run()

    def test_terminating_with_pulses_in_transit_towards_self_is_flagged(self):
        class TerminateWithInboundNode(Node):
            # Sends itself a pulse (n=1 self-loop) then terminates before
            # the pulse is delivered.
            def on_init(self, api):
                api.send(PORT_ONE)
                api.terminate("raced")

            def on_message(self, api, port, content):  # pragma: no cover
                pass

        topology = build_oriented_ring([TerminateWithInboundNode()])
        result = run_to_quiescence(topology.network)
        assert any("in transit" in violation for violation in result.quiescence_violations)

    def test_double_terminate_rejected(self):
        class DoubleTerminator(Node):
            def on_init(self, api):
                api.terminate("one")
                api.terminate("two")

            def on_message(self, api, port, content):  # pragma: no cover
                pass

        topology = build_oriented_ring([DoubleTerminator()])
        with pytest.raises(ProtocolViolation):
            run_to_quiescence(topology.network)

    def test_invalid_port_rejected(self):
        class BadPortNode(Node):
            def on_init(self, api):
                api.send(2)

            def on_message(self, api, port, content):  # pragma: no cover
                pass

        topology = build_oriented_ring([BadPortNode()])
        with pytest.raises(ProtocolViolation):
            run_to_quiescence(topology.network)


class TestTraceLedger:
    def test_counters_without_event_recording(self):
        nodes = [CountAndStopNode(), CountAndStopNode()]
        topology = build_oriented_ring(nodes)
        result = run_to_quiescence(topology.network)
        trace = result.trace
        assert trace.total_sent == 2
        assert trace.total_received == 2
        assert trace.sent_by(0) == 1
        assert trace.received_by(1) == 1
        assert trace.send_records == []  # recording off by default

    def test_event_recording_produces_matched_records(self):
        nodes = [CountAndStopNode(), CountAndStopNode()]
        topology = build_oriented_ring(nodes)
        result = Engine(topology.network, record_events=True).run()
        trace = result.trace
        assert len(trace.send_records) == 2
        assert len(trace.delivery_records) == 2
        send_seqs = {record.seq for record in trace.send_records}
        assert {record.send_seq for record in trace.delivery_records} == send_seqs

    def test_invariant_hooks_run_after_each_delivery(self):
        calls = []
        nodes = [CountAndStopNode(), CountAndStopNode()]
        topology = build_oriented_ring(nodes)
        engine = Engine(
            topology.network, invariant_hooks=[lambda eng: calls.append(eng._steps)]
        )
        engine.run()
        assert calls == [1, 2]  # hook sees the post-delivery step counter

    def test_failing_hook_aborts_run(self):
        def bad_hook(engine):
            raise AssertionError("boom")

        nodes = [CountAndStopNode(), CountAndStopNode()]
        topology = build_oriented_ring(nodes)
        engine = Engine(topology.network, invariant_hooks=[bad_hook])
        with pytest.raises(AssertionError, match="boom"):
            engine.run()
