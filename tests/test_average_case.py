"""Average-case analysis: Chang-Roberts' n*H_n vs Algorithm 2's constancy."""

import pytest

from repro.analysis.average_case import (
    chang_roberts_expected_candidate_messages,
    chang_roberts_expected_total,
    harmonic,
    measure_chang_roberts_over_placements,
    measure_oblivious_over_placements,
)
from repro.exceptions import ConfigurationError


class TestHarmonic:
    def test_known_values(self):
        assert harmonic(1) == 1.0
        assert harmonic(2) == 1.5
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_monotone(self):
        values = [harmonic(n) for n in range(1, 30)]
        assert values == sorted(values)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            harmonic(0)


class TestChangRobertsAverageCase:
    def test_measured_mean_tracks_n_harmonic_n(self):
        # 300 random placements of 1..16: the mean total should land
        # within ~10% of n*H_n + n.
        stats = measure_chang_roberts_over_placements(16, trials=300, seed=4)
        expected = chang_roberts_expected_total(16)
        assert stats.mean == pytest.approx(expected, rel=0.10)

    def test_placement_spread_is_wide(self):
        stats = measure_chang_roberts_over_placements(16, trials=300, seed=4)
        # best case 3n-1 = 47, worst n(n+1)/2 + n = 152: real spread.
        assert stats.spread > 16

    def test_mean_between_best_and_worst(self):
        n = 12
        stats = measure_chang_roberts_over_placements(n, trials=200, seed=1)
        assert 3 * n - 1 <= stats.minimum
        assert stats.maximum <= n * (n + 1) // 2 + n
        assert stats.minimum < stats.mean < stats.maximum


class TestObliviousConstancy:
    def test_zero_spread_across_placements(self):
        # Theorem 1's count depends only on (n, IDmax), both placement-
        # invariant: the measured spread must be exactly zero.
        stats = measure_oblivious_over_placements(10, trials=60, seed=2)
        assert stats.spread == 0
        assert stats.mean == 10 * (2 * 10 + 1)

    def test_expected_formula_helpers(self):
        assert chang_roberts_expected_candidate_messages(1) == 1.0
        assert chang_roberts_expected_total(2) == pytest.approx(2 * 1.5 + 2)
