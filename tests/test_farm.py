"""The sweep farm: cache keys, store, ledger, and the crash/resume battery.

The farm's contract has three legs, each pinned here:

* **Keys** — the content address of a shard is a pure, canonical
  function of its semantics coordinates: injective on semantically
  distinct campaigns, stable across dict insertion order and backend
  choice (property-tested via Hypothesis).
* **Durability** — results are written atomically and checksummed; a
  corrupt or truncated object is detected, quarantined, and recomputed,
  never silently aggregated; the ledger replays cleanly around a
  truncated tail and dead-pid ``running`` records.
* **Resume** — a campaign SIGKILLed mid-run (real subprocess) or failed
  mid-shard (injected) completes on re-submit from its cached shards,
  and the collected stats are byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.accel import HAVE_NUMPY
from repro.exceptions import ConfigurationError
from repro.farm import (
    Campaign,
    Farm,
    Ledger,
    ResultStore,
    canonical_fault_model,
    canonical_json,
    degradation_params,
    fault_model_from_canonical,
    placements_params,
    recovery_params,
    shard_key,
    shard_ranges,
    whp_params,
)
from repro.farm.service import INJECT_FAIL_ENV
from repro.faults.model import (
    FaultBurst,
    FaultModel,
    NodeCrash,
    PulseDrop,
    StateCorruption,
)
from strategies import farm_campaigns

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _job_coordinates(job) -> str:
    """The canonical spelling of everything a shard key may depend on."""
    return canonical_json(
        {
            "workload": job.workload,
            "params": dict(job.params),
            "start": job.start,
            "stop": job.stop,
        }
    )


class TestKeys:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"x": float("nan")})

    def test_canonical_json_rejects_non_string_keys(self):
        with pytest.raises(ConfigurationError):
            canonical_json({1: "x"})

    def test_shard_key_stable_across_dict_order(self):
        params = recovery_params(n=5, id_max=40, seed=2)
        shuffled = dict(reversed(list(params.items())))
        assert shard_key("recovery", params, 0, 100) == shard_key(
            "recovery", shuffled, 0, 100
        )

    def test_shard_key_range_validated(self):
        params = placements_params(n=4)
        with pytest.raises(ConfigurationError):
            shard_key("placements", params, 10, 10)
        with pytest.raises(ConfigurationError):
            shard_key("placements", params, -1, 10)

    def test_fault_model_canonical_roundtrip(self):
        model = FaultModel(
            drop_rate=0.01,
            duplicate_rate=0.02,
            spurious_rate=0.005,
            seed=7,
            burst=FaultBurst(start=2, length=5),
            drops=(PulseDrop(round_index=1, node=0),),
            crashes=(NodeCrash(node=1, at_round=3, restart_after=2),),
            corruptions=(StateCorruption(node=2, at_round=4, value=9),),
        )
        assert fault_model_from_canonical(canonical_fault_model(model)) == model
        assert fault_model_from_canonical(None) is None
        assert canonical_fault_model(None) is None

    def test_campaign_id_distinguishes_shard_grids(self):
        params = placements_params(n=8)
        a = Campaign("placements", total=100, params=params, shard_size=10)
        b = Campaign("placements", total=100, params=params, shard_size=20)
        assert a.cid != b.cid  # different grids are different campaigns
        same = Campaign("placements", total=100, params=params, shard_size=10)
        assert same.cid == a.cid  # ... and identity is purely the spec

    @given(campaign=farm_campaigns())
    @settings(max_examples=60, deadline=None)
    def test_keys_stable_across_spec_roundtrip(self, campaign):
        """A campaign rebuilt from its JSON spec re-derives identical keys
        (dict ordering through JSON is immaterial)."""
        spec = json.loads(canonical_json(campaign.spec()))
        rebuilt = Campaign.from_spec(spec)
        assert rebuilt.cid == campaign.cid
        assert [job.key for job in rebuilt.jobs()] == [
            job.key for job in campaign.jobs()
        ]

    @given(a=farm_campaigns(), b=farm_campaigns())
    @settings(max_examples=80, deadline=None)
    def test_keys_injective_on_semantics(self, a, b):
        """Two shards share a key iff their semantic coordinates match."""
        ja, jb = a.jobs()[0], b.jobs()[0]
        if _job_coordinates(ja) == _job_coordinates(jb):
            assert ja.key == jb.key
        else:
            assert ja.key != jb.key


class TestShardGrid:
    def test_shard_ranges_fixed_size_contiguous(self):
        assert shard_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert shard_ranges(4, 4) == [(0, 4)]
        assert shard_ranges(1, 100) == [(0, 1)]

    def test_shard_ranges_validate(self):
        with pytest.raises(ConfigurationError):
            shard_ranges(0, 4)
        with pytest.raises(ConfigurationError):
            shard_ranges(10, 0)

    def test_enlarged_campaign_reuses_prefix_keys(self):
        """Growing total keeps every existing shard key (fixed ranges)."""
        params = placements_params(n=8, seed=1)
        small = Campaign("placements", total=1000, params=params, shard_size=250)
        large = Campaign("placements", total=2000, params=params, shard_size=250)
        small_keys = [job.key for job in small.jobs()]
        large_keys = [job.key for job in large.jobs()]
        assert large_keys[: len(small_keys)] == small_keys

    def test_degradation_jobs_share_keys_with_standalone_recovery(self):
        """A degradation grid point is cache-compatible with a recovery
        campaign at the same (rate, fault_seed) coordinates."""
        from repro.analysis.degradation import model_for_rate

        curve = Campaign(
            "degradation",
            total=100,
            params=degradation_params(
                kind="drop", rates=(0.0, 0.02), n=5, id_max=40, fault_seed=3
            ),
            shard_size=50,
        )
        standalone = Campaign(
            "recovery",
            total=100,
            params=recovery_params(
                n=5, id_max=40, faults=model_for_rate("drop", 0.02, 3)
            ),
            shard_size=50,
        )
        curve_keys = {job.key for job in curve.jobs()}
        standalone_keys = {job.key for job in standalone.jobs()}
        assert standalone_keys <= curve_keys

    def test_campaign_validates_workload_and_params(self):
        with pytest.raises(ConfigurationError):
            Campaign("nope", total=10, params={})
        with pytest.raises(ConfigurationError):
            Campaign("whp", total=10, params={"n": 4})  # missing c, seed
        with pytest.raises(ConfigurationError):
            Campaign(
                "whp", total=10, params={**whp_params(), "extra": 1}
            )
        with pytest.raises(ConfigurationError):
            degradation_params(rates=(0.05, 0.0))
        with pytest.raises(ConfigurationError):
            degradation_params(rates=())


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"totals": [1, 2, 3], "nested": {"a": 0.5}}
        key = "ab" + "0" * 62
        store.put(key, payload)
        assert store.get(key) == payload
        assert store.has(key)
        assert list(store.keys()) == [key]
        assert store.delete(key)
        assert store.get(key) is None
        assert not store.delete(key)

    def test_atomic_write_leaves_no_partial_object(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" + "1" * 62
        store.put(key, {"x": 1})
        # Overwrite with new content; a reader sees old or new, never junk.
        store.put(key, {"x": 2})
        assert store.get(key) == {"x": 2}
        assert store.sweep_tmp() == 0  # no temporaries left behind

    def test_corrupted_payload_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" + "2" * 62
        path = store.put(key, {"count": 10})
        body = json.loads(path.read_text())
        body["payload"]["count"] = 11  # bit rot: checksum now wrong
        path.write_text(json.dumps(body))
        assert store.get(key) is None
        assert not path.exists()  # quarantined → will be recomputed

    def test_truncated_object_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "01" + "3" * 62
        path = store.put(key, {"count": 10})
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(key) is None
        assert not path.exists()

    def test_object_at_wrong_address_is_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "23" + "4" * 62
        other = "23" + "5" * 62
        path = store.put(key, {"count": 10})
        moved = path.parent / f"{other}.json"
        path.rename(moved)
        assert store.get(other) is None  # key field disagrees with address
        assert not moved.exists()

    def test_sweep_tmp_removes_strays(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "45" + "6" * 62
        store.put(key, {"x": 1})
        stray = store.objects / "45" / ".tmp-999-dead.json"
        stray.write_text("{")
        assert store.sweep_tmp() == 1
        assert not stray.exists()
        assert store.get(key) == {"x": 1}


class TestLedger:
    def test_replay_last_record_wins(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.record_campaign({"id": "c1", "workload": "whp"})
        ledger.record_shard("c1", "k1", 0, 0, 10, "running")
        ledger.record_shard("c1", "k1", 0, 0, 10, "done")
        state = ledger.replay()
        assert state["shards"][("c1", "k1")]["state"] == "done"
        assert ledger.shard_states("c1")["k1"]["state"] == "done"

    def test_rejects_unknown_state(self, tmp_path):
        with pytest.raises(ValueError):
            Ledger(tmp_path).record_shard("c", "k", 0, 0, 1, "bogus")

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.record_campaign({"id": "c1"})
        ledger.record_shard("c1", "k1", 0, 0, 10, "done")
        with open(ledger.path, "a") as handle:
            handle.write('{"type": "shard", "campaign": "c1", "key"')
        state = ledger.replay()
        assert state["shards"][("c1", "k1")]["state"] == "done"
        assert len(ledger.records()) == 2

    def test_stale_running_detects_dead_pid(self, tmp_path):
        ledger = Ledger(tmp_path)
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        ledger.append(
            {
                "type": "shard",
                "campaign": "c1",
                "key": "k1",
                "index": 0,
                "start": 0,
                "stop": 10,
                "state": "running",
                "pid": dead.pid,
            }
        )
        ledger.record_shard("c1", "k2", 1, 10, 20, "running")  # us: alive
        stale = ledger.stale_running()
        assert [record["key"] for record in stale] == ["k1"]

    def test_compact_reaps_orphans_and_demotes_dead_running(self, tmp_path):
        ledger = Ledger(tmp_path)
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        ledger.record_campaign({"id": "live"})
        ledger.record_campaign({"id": "orphan"})
        ledger.record_shard("orphan", "k0", 0, 0, 10, "done")
        ledger.append(
            {
                "type": "shard",
                "campaign": "live",
                "key": "k1",
                "index": 0,
                "start": 0,
                "stop": 10,
                "state": "running",
                "pid": dead.pid,
            }
        )
        counters = ledger.compact(live_campaigns={"live"})
        assert counters == {"orphaned_entries": 2, "demoted_running": 1}
        state = ledger.replay()
        assert set(state["campaigns"]) == {"live"}
        record = state["shards"][("live", "k1")]
        assert record["state"] == "pending"
        assert record["note"] == "gc: dead pid"


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs the numpy tier")
class TestBackendIndependence:
    def test_shard_payload_identical_across_backends(self):
        """The justification for excluding backend from cache keys."""
        from repro.farm.workloads import run_shard

        params = recovery_params(
            n=4, id_max=16, seed=1, faults=FaultModel(drop_rate=0.05, seed=2)
        )
        by_backend = {
            backend: run_shard("recovery", params, 0, 12, backend=backend)
            for backend in ("python", "numpy")
        }
        assert by_backend["python"] == by_backend["numpy"]

    def test_block_size_does_not_change_payload(self):
        from repro.farm.workloads import run_shard

        params = recovery_params(
            n=4, id_max=16, seed=1, faults=FaultModel(drop_rate=0.05, seed=2)
        )
        small = run_shard("recovery", params, 0, 12, block_size=3)
        large = run_shard("recovery", params, 0, 12, block_size=256)
        assert small == large


class TestSubmitCollect:
    def test_unknown_campaign_and_empty_last(self, tmp_path):
        farm = Farm(tmp_path)
        with pytest.raises(ConfigurationError):
            farm.load_campaign("last")
        with pytest.raises(ConfigurationError):
            farm.load_campaign("deadbeefdeadbeef")

    def test_tampered_spec_file_is_rejected(self, tmp_path):
        farm = Farm(tmp_path)
        campaign = Campaign(
            "placements", total=10, params=placements_params(n=3), shard_size=5
        )
        farm.submit(campaign)
        path = farm.campaigns_dir / f"{campaign.cid}.json"
        spec = json.loads(path.read_text())
        spec["total"] = 20
        path.write_text(json.dumps(spec))
        with pytest.raises(ConfigurationError):
            farm.load_campaign(campaign.cid)

    def test_collect_refuses_incomplete_campaign(self, tmp_path):
        farm = Farm(tmp_path)
        campaign = Campaign(
            "placements", total=20, params=placements_params(n=4), shard_size=5
        )
        farm.submit(campaign)
        farm.store.delete(campaign.jobs()[2].key)
        with pytest.raises(ConfigurationError, match="incomplete"):
            farm.collect(campaign.cid)

    def test_submit_is_incremental_not_all_or_nothing(self, tmp_path):
        """Each computed shard is durable immediately: deleting one
        object later costs exactly one shard of recompute."""
        farm = Farm(tmp_path)
        campaign = Campaign(
            "placements", total=40, params=placements_params(n=5), shard_size=10
        )
        cold = farm.submit(campaign)
        assert (cold.hits, cold.computed) == (0, 4)
        farm.store.delete(campaign.jobs()[1].key)
        resumed = farm.submit(campaign)
        assert (resumed.hits, resumed.computed) == (3, 1)
        assert resumed.complete

    def test_status_reports_interrupted_shards(self, tmp_path):
        farm = Farm(tmp_path)
        campaign = Campaign(
            "placements", total=20, params=placements_params(n=4), shard_size=10
        )
        farm.submit(campaign)
        # Fake a killed worker: object gone, ledger stuck at running
        # under a dead pid.
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        victim = campaign.jobs()[0]
        farm.store.delete(victim.key)
        farm.ledger.append(
            {
                "type": "shard",
                "campaign": campaign.cid,
                "key": victim.key,
                "index": victim.index,
                "start": victim.start,
                "stop": victim.stop,
                "state": "running",
                "pid": dead.pid,
            }
        )
        summary = farm.status(campaign.cid)["campaigns"][campaign.cid]
        assert summary["interrupted"] == 1
        assert summary["done"] == 1
        assert not summary["complete"]
        counters = farm.gc()
        assert counters["demoted_running"] == 1


class TestInjectedFailureResume:
    def test_failed_shard_resumes_bit_identically(self, tmp_path, monkeypatch):
        params = recovery_params(
            n=5, id_max=40, seed=2, faults=FaultModel(drop_rate=0.02, seed=5)
        )
        campaign = Campaign("recovery", total=60, params=params, shard_size=15)

        reference = Farm(tmp_path / "reference")
        assert reference.submit(campaign).complete
        expected = reference.collect_text(campaign.cid)

        farm = Farm(tmp_path / "interrupted")
        monkeypatch.setenv(INJECT_FAIL_ENV, "1,3")
        broken = farm.submit(campaign)
        assert len(broken.failed) == 2
        assert not broken.complete
        assert {index for index, _k, _m in broken.failed} == {1, 3}
        with pytest.raises(ConfigurationError):
            farm.collect(campaign.cid)
        states = farm.ledger.shard_states(campaign.cid)
        failed_states = [r["state"] for r in states.values()]
        assert failed_states.count("failed") == 2

        monkeypatch.delenv(INJECT_FAIL_ENV)
        resumed = farm.submit(campaign)
        assert resumed.complete
        assert (resumed.hits, resumed.computed) == (2, 2)
        assert farm.collect_text(campaign.cid) == expected


class TestColdWarmMixedDifferential:
    def test_degradation_collect_byte_identical(self, tmp_path):
        """Same curve, three execution histories, one byte string."""
        campaign = Campaign(
            "degradation",
            total=60,
            params=degradation_params(
                kind="drop", rates=(0.0, 0.02), n=5, id_max=40, seed=2
            ),
            shard_size=20,
        )
        farm = Farm(tmp_path)
        cold = farm.submit(campaign)
        assert cold.complete and cold.hits == 0
        cold_text = farm.collect_text(campaign.cid)

        warm = farm.submit(campaign)
        assert warm.hit_rate == 1.0 and warm.computed == 0
        warm_text = farm.collect_text(campaign.cid)

        # Mixed: delete one object, corrupt another, truncate a third.
        jobs = campaign.jobs()
        farm.store.delete(jobs[0].key)
        corrupt_path = farm.store._path(jobs[2].key)
        body = json.loads(corrupt_path.read_text())
        body["payload"]["counts"]["recovered"] += 1
        corrupt_path.write_text(json.dumps(body))
        truncate_path = farm.store._path(jobs[4].key)
        truncate_path.write_text(truncate_path.read_text()[:40])

        mixed = farm.submit(campaign)
        assert mixed.complete
        assert (mixed.hits, mixed.computed) == (len(jobs) - 3, 3)
        mixed_text = farm.collect_text(campaign.cid)

        assert cold_text == warm_text == mixed_text

    def test_corruption_is_never_silently_aggregated(self, tmp_path):
        """A checksum-mismatched shard must change nothing in collect:
        it is quarantined at read time and recomputed on submit."""
        campaign = Campaign(
            "placements", total=30, params=placements_params(n=4), shard_size=10
        )
        farm = Farm(tmp_path)
        farm.submit(campaign)
        honest = farm.collect_text(campaign.cid)

        victim = campaign.jobs()[1]
        path = farm.store._path(victim.key)
        body = json.loads(path.read_text())
        body["payload"]["totals"][0] += 1000  # would shift the mean
        path.write_text(json.dumps(body))

        # Collect detects the bad checksum → campaign reads incomplete.
        with pytest.raises(ConfigurationError, match="incomplete"):
            farm.collect(campaign.cid)
        resumed = farm.submit(campaign)
        assert resumed.computed == 1
        assert farm.collect_text(campaign.cid) == honest


class TestFarmMatchesDirectPaths:
    def test_measure_degradation_farm_equals_direct(self, tmp_path):
        from repro.analysis.degradation import measure_degradation

        kwargs = dict(
            kind="drop", n=5, id_max=40, samples=40, seed=2, confidence=0.95
        )
        direct = measure_degradation([0.0, 0.05], **kwargs)
        farmed = measure_degradation(
            [0.0, 0.05], farm_root=tmp_path, **kwargs
        )
        assert farmed.to_dict() == direct.to_dict()

    def test_measure_anonymous_success_farm_equals_direct(self, tmp_path):
        from repro.analysis.whp import measure_anonymous_success

        direct = measure_anonymous_success(8, 25, seed=11)
        farmed = measure_anonymous_success(8, 25, seed=11, farm_root=tmp_path)
        assert farmed == direct

    def test_measure_placements_farm_equals_direct(self, tmp_path):
        from repro.analysis.average_case import (
            measure_oblivious_over_placements,
        )

        direct = measure_oblivious_over_placements(5, 30, seed=3, fleet=True)
        farmed = measure_oblivious_over_placements(
            5, 30, seed=3, farm_root=tmp_path
        )
        assert farmed == direct

    def test_whp_interval_choices_match(self, tmp_path):
        from repro.analysis.whp import measure_anonymous_success

        for interval in ("wilson", "clopper-pearson"):
            direct = measure_anonymous_success(6, 20, seed=3, interval=interval)
            farmed = measure_anonymous_success(
                6, 20, seed=3, interval=interval, farm_root=tmp_path
            )
            assert farmed == direct


def _submit_subprocess(root: Path, total: int, shard_size: int) -> subprocess.Popen:
    """Launch `repro farm submit` for the battery's recovery campaign."""
    env = {**os.environ, "PYTHONPATH": SRC_DIR}
    env.pop(INJECT_FAIL_ENV, None)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "farm",
            "submit",
            "--root",
            str(root),
            "--workload",
            "recovery",
            "--n",
            "6",
            "--id-max",
            "64",
            "--seed",
            "9",
            "--drop-rate",
            "0.01",
            "--fault-seed",
            "9",
            "--total",
            str(total),
            "--shard-size",
            str(shard_size),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _battery_campaign(total: int, shard_size: int) -> Campaign:
    """The in-process twin of :func:`_submit_subprocess`'s campaign."""
    return Campaign(
        "recovery",
        total=total,
        params=recovery_params(
            n=6,
            id_max=64,
            seed=9,
            faults=FaultModel(drop_rate=0.01, seed=9),
        ),
        shard_size=shard_size,
    )


def _object_count(root: Path) -> int:
    """Committed (os.replace'd) result objects under ``root`` — in-flight
    ``.tmp-*`` files are exactly what a kill may destroy, so they don't
    count."""
    objects = root / "objects"
    if not objects.is_dir():
        return 0
    return sum(
        1
        for path in objects.rglob("*.json")
        if not path.name.startswith(".tmp-")
    )


class TestSigkillResumeBattery:
    def test_sigkill_mid_campaign_then_resume_bit_identical(self, tmp_path):
        """The acceptance criterion in miniature: SIGKILL a real worker
        process mid-shard, re-submit, and the collected stats must be
        byte-identical to a never-interrupted run."""
        total, shard_size = 4000, 100
        campaign = _battery_campaign(total, shard_size)

        reference = Farm(tmp_path / "reference")
        assert reference.submit(campaign).complete
        expected = reference.collect_text(campaign.cid)

        victim_root = tmp_path / "victim"
        proc = _submit_subprocess(victim_root, total, shard_size)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if _object_count(victim_root) >= 2:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.005)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        farm = Farm(victim_root)
        cached = sum(
            1 for job in campaign.jobs() if farm.store.has(job.key)
        )
        resumed = farm.submit(campaign)
        assert resumed.complete
        assert resumed.hits == cached
        assert resumed.hits + resumed.computed == len(campaign.jobs())
        assert farm.collect_text(campaign.cid) == expected
        # gc reaps whatever the kill left behind without changing results.
        farm.gc()
        assert farm.collect_text(campaign.cid) == expected

    @pytest.mark.skipif(
        not os.environ.get("REPRO_FARM_BIG"),
        reason="set REPRO_FARM_BIG=1 for the 1M-instance acceptance run",
    )
    def test_million_instance_sigkill_resume_bit_identical(self, tmp_path):
        """The ISSUE's acceptance criterion at full scale: a campaign of
        1,000,000 instances, killed mid-run, completes from cached
        shards with bit-identical collected stats."""
        params = placements_params(n=16, seed=1)
        campaign = Campaign(
            "placements", total=1_000_000, params=params, shard_size=50_000
        )
        reference = Farm(tmp_path / "reference")
        assert reference.submit(campaign).complete
        expected = reference.collect_text(campaign.cid)

        victim_root = tmp_path / "victim"
        env = {**os.environ, "PYTHONPATH": SRC_DIR}
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "farm",
                "submit",
                "--root",
                str(victim_root),
                "--workload",
                "placements",
                "--n",
                "16",
                "--seed",
                "1",
                "--total",
                "1000000",
                "--shard-size",
                "50000",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 600.0
        while time.monotonic() < deadline:
            if _object_count(victim_root) >= 2 or proc.poll() is not None:
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

        farm = Farm(victim_root)
        resumed = farm.submit(campaign)
        assert resumed.complete
        assert resumed.hits >= 2
        assert farm.collect_text(campaign.cid) == expected


class TestEarWorkload:
    """The topology-sweep workload: ear election over a graph descriptor.

    Two contracts: (1) ear campaigns run, resume from the warm cache,
    and collect the same summary the foreground topology battery would;
    (2) ring workload keys never move — the topology_semantics
    coordinate enters only params carrying a topology descriptor.
    """

    def _campaign(self, total=24, shard_size=8):
        from repro.farm.campaign import ear_params
        from repro.graphs.samples import theta_graph

        return Campaign(
            "ear",
            total=total,
            params=ear_params(theta_graph(0, 1, 2), id_max=64),
            shard_size=shard_size,
        )

    def test_submit_collect_and_warm_cache(self, tmp_path):
        farm = Farm(tmp_path)
        cold = farm.submit(self._campaign(), backend="python")
        assert cold.complete and cold.hits == 0 and cold.computed == 3
        warm = farm.submit(self._campaign(), backend="python")
        assert warm.complete and warm.hits == 3 and warm.computed == 0
        collected = farm.collect(cold.cid)
        assert collected["workload"] == "ear"
        result = collected["result"]
        assert result["clean"] and result["violations"] == 0
        assert result["samples"] == 24

    def test_collect_matches_foreground_battery(self, tmp_path):
        from repro.graphs.samples import theta_graph
        from repro.verification.statistical import run_topology_check

        farm = Farm(tmp_path)
        outcome = farm.submit(self._campaign(), backend="python")
        result = farm.collect(outcome.cid)["result"]
        report = run_topology_check(
            theta_graph(0, 1, 2), id_max=64, samples=24, backend="python"
        )
        assert result["violations"] == report.violations
        assert result["rate_low"] == report.rate_low
        assert result["rate_high"] == report.rate_high

    def test_ear_params_canonical_across_edge_spellings(self):
        from repro.farm.campaign import ear_params
        from repro.graphs import Graph
        from repro.graphs.samples import theta_graph

        graph = theta_graph()
        respelled = Graph.from_edges(
            graph.n, [(b, a) for a, b in sorted(graph.edges, reverse=True)]
        )
        assert ear_params(graph) == ear_params(respelled)
        assert (
            shard_key("ear", ear_params(graph), 0, 10)
            == shard_key("ear", ear_params(respelled), 0, 10)
        )

    def test_ear_keys_carry_topology_semantics(self):
        from repro.farm.campaign import ear_params
        from repro.farm.keys import (
            SEMANTICS_VERSION,
            TOPOLOGY_SEMANTICS_VERSION,
            digest,
        )
        from repro.graphs.samples import theta_graph

        params = ear_params(theta_graph())
        assert params["topology"] is not None
        expected = digest(
            {
                "semantics": SEMANTICS_VERSION,
                "workload": "ear",
                "params": dict(params),
                "start": 0,
                "stop": 10,
                "topology_semantics": TOPOLOGY_SEMANTICS_VERSION,
            }
        )
        assert shard_key("ear", params, 0, 10) == expected

    def test_ring_workload_params_have_no_topology(self):
        """Every ring workload's param set stays topology-free, so its
        keys can never pick up the topology_semantics coordinate."""
        from repro.farm.campaign import (
            placements_params,
            recovery_params,
            whp_params,
        )

        for params in (recovery_params(), whp_params(), placements_params()):
            assert "topology" not in params
