"""The full CLI surface must work with NumPy uninstalled.

NumPy is the ``[perf]`` extra — an accelerator, never a requirement
(:mod:`repro.accel` is the single import site).  This suite launches one
subprocess with a shadow ``numpy`` module (raising ImportError) first on
``PYTHONPATH`` and drives every CLI subcommand through it, asserting the
pure-Python fallbacks cover the whole surface, including the fleet
backends and the statistical checker.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

DRIVER = textwrap.dedent(
    """
    import sys

    from repro.accel import HAVE_NUMPY
    assert not HAVE_NUMPY, "numpy shadow failed; test is vacuous"

    from repro.simulator.fleet import HAVE_NUMPY as FLEET_HAVE_NUMPY
    assert not FLEET_HAVE_NUMPY

    from repro.cli import main

    COMMANDS = [
        ["elect", "--ids", "3,7,5,2"],
        ["elect", "--setting", "nonoriented", "--ids", "3,7,5",
         "--flips", "1,0,1"],
        ["elect", "--setting", "anonymous", "--n", "4", "--seed", "1"],
        ["compute", "--ids", "3,1,2", "--inputs", "4,5,6"],
        ["simulate", "--ids", "3,1,2"],
        ["verify", "--ids", "3,1,2"],
        ["verify", "--statistical", "--samples", "40", "--n", "5",
         "--id-max", "40", "--block-size", "16"],
        ["verify", "--statistical", "--samples", "16", "--n", "4",
         "--id-max", "30", "--backend", "python", "--scheduler", "seeded"],
        ["solitude", "--max-id", "6"],
        ["compare", "--n", "5", "--spread", "16"],
        ["timeline", "--ids", "3,1,2", "--rows", "12"],
        ["sweep", "--workload", "placements", "--n", "5", "--trials", "8"],
        ["sweep", "--workload", "whp", "--n", "4", "--trials", "8"],
        ["sweep", "--workload", "whp", "--n", "4", "--trials", "8",
         "--no-fleet"],
    ]

    for argv in COMMANDS:
        code = main(argv)
        assert code == 0, f"{argv} exited {code}"
        print("OK", " ".join(argv))

    # The injected-fault path must fail loudly even without numpy.
    code = main([
        "verify", "--statistical", "--samples", "16", "--n", "5",
        "--id-max", "40", "--block-size", "16", "--inject-drop", "3,2,7",
    ])
    assert code == 1, f"fault injection exited {code}, expected 1"
    print("OK fault-injection FAILED as expected")
    print("ALL-COMMANDS-PASSED")
    """
)


def test_cli_surface_without_numpy(tmp_path):
    (tmp_path / "numpy.py").write_text(
        'raise ImportError("numpy disabled by tests/test_numpy_free.py")\n'
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([str(tmp_path), str(REPO_SRC)])
    proc = subprocess.run(
        [sys.executable, "-c", DRIVER],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "ALL-COMMANDS-PASSED" in proc.stdout
