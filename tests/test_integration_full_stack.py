"""Cross-module integration scenarios spanning the whole repository."""

import random

import pytest

from repro.analysis.complexity import algorithm2_pulses
from repro.asyncio_runtime import run_network_asyncio
from repro.core.common import LeaderState
from repro.core.composition import run_composed
from repro.core.lower_bound import lower_bound_pulses
from repro.core.nonoriented import IdScheme, NonOrientedNode, run_nonoriented
from repro.core.terminating import TerminatingNode, run_terminating
from repro.defective.simulation import AllReduceProgram, MultiFoldProgram
from repro.graphs import Graph, is_ring, is_two_edge_connected
from repro.simulator.engine import Engine
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.simulator.timeline import render_event_log, render_space_time
from repro.synchronous import run_time_coded_election
from repro.verification import explore_all_schedules


class TestTopologyValidationPipeline:
    """The graphs module guards the algorithms' applicability domain."""

    def test_simulated_rings_are_graph_theoretic_rings(self):
        # The simulator's n>=3 rings match the graphs module's ring
        # predicate and sit exactly on the 2-edge-connectivity frontier.
        for n in (3, 5, 8):
            graph = Graph.ring(n)
            assert is_ring(graph)
            assert is_two_edge_connected(graph)

    def test_non_ring_topology_is_rejected_conceptually(self):
        # A graph with a bridge is outside [8]'s computability frontier.
        bridge_graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert not is_two_edge_connected(bridge_graph)


class TestThreeVerificationRegimesAgree:
    """Sampled adversaries, exhaustive checking, and asyncio concur."""

    @pytest.mark.parametrize("ids", [[2, 3, 1], [1, 3, 2]])
    def test_same_verdict_everywhere(self, ids):
        expected_leader = max(range(len(ids)), key=lambda i: ids[i])
        expected_pulses = algorithm2_pulses(len(ids), max(ids))

        # 1. discrete-event run
        discrete = run_terminating(ids)
        assert discrete.leaders == [expected_leader]
        assert discrete.total_pulses == expected_pulses

        # 2. exhaustive exploration
        def factory():
            return build_oriented_ring([TerminatingNode(i) for i in ids]).network

        exhaustive = explore_all_schedules(factory)
        assert exhaustive.confluent
        (outputs,) = exhaustive.terminal_outputs
        assert outputs[expected_leader] == LeaderState.LEADER

        # 3. asyncio backend
        nodes = [TerminatingNode(i) for i in ids]
        concurrent = run_network_asyncio(
            build_oriented_ring(nodes).network, seed=1, max_delay=0.0003
        )
        assert concurrent.total_sent == expected_pulses
        assert concurrent.outputs[expected_leader] is LeaderState.LEADER


class TestEndToEndStory:
    """The README's promise, as one integration flow."""

    def test_scrambled_ring_to_global_statistics(self):
        # 1. A non-oriented ring orients itself and elects a leader.
        ids = [14, 3, 27, 9, 21]
        flips = [True, False, True, True, False]
        oriented = run_nonoriented(ids, flips=flips)
        assert oriented.orientation_consistent
        leader = oriented.leaders[0]
        assert ids[leader] == 27

        # 2. With orientation established, the same IDs run the
        #    terminating election + computation end-to-end.
        inputs = [18, 22, 19, 31, 24]
        composed = run_composed(
            ids, inputs,
            MultiFoldProgram([("sum", lambda a, b: a + b), ("max", max)]),
        )
        assert composed.leader == leader
        assert composed.outputs == [{"sum": 114, "max": 31}] * 5
        assert composed.run.quiescently_terminated

        # 3. Costs respect both of the paper's bounds.
        assert composed.total_pulses >= lower_bound_pulses(5, 27)
        assert composed.total_pulses > algorithm2_pulses(5, 27)

    def test_recorded_run_renders_everywhere(self):
        ids = [2, 4, 1]
        nodes = [TerminatingNode(node_id) for node_id in ids]
        topology = build_oriented_ring(nodes)
        result = Engine(topology.network, record_events=True).run()
        log = render_event_log(result)
        diagram = render_space_time(result, 3)
        assert "halt" in log
        assert "##" in diagram
        # every delivered pulse appears exactly once in the diagram
        assert diagram.count("*") == result.trace.total_received


class TestModelContrasts:
    """Asynchronous-oblivious vs synchronous-content, same inputs."""

    def test_message_counts_bracket_each_other(self):
        rng = random.Random(5)
        for _ in range(5):
            n = rng.randint(2, 12)
            ids = rng.sample(range(1, 80), n)
            sync = run_time_coded_election(ids)
            oblivious = run_terminating(ids)
            assert sync.total_sent == n <= oblivious.total_pulses
            # And both elect *a* unique, consistent leader (different
            # conventions: min vs max).
            sync_winners = [
                i for i, out in enumerate(sync.outputs) if out is LeaderState.LEADER
            ]
            assert sync_winners == [ids.index(min(ids))]
            assert oblivious.leaders == [ids.index(max(ids))]


class TestNonOrientedAsyncioAgreement:
    def test_algorithm3_same_result_both_backends(self):
        ids = [4, 11, 6]
        flips = [True, False, True]

        discrete = run_nonoriented(ids, flips=flips)

        nodes = [NonOrientedNode(i, scheme=IdScheme.SUCCESSOR) for i in ids]
        topology = build_nonoriented_ring(nodes, flips=flips)
        concurrent = run_network_asyncio(topology.network, seed=8, max_delay=0.0003)

        assert concurrent.total_sent == discrete.total_pulses
        assert [node.state for node in nodes] == discrete.states
        assert [node.cw_port_label for node in nodes] == discrete.cw_port_labels
