"""The unified fault language: model validation, counter-based rolls,
seeded replay, recovery classification, and degradation curves.

:mod:`repro.faults` is one declarative description compiled onto every
backend; these tests pin the language itself (validation, the pure
counter-based decision function, seeded-replay determinism of the
event-channel compiler) and the two consumers built on it — the recovery
harness (:func:`repro.verification.statistical.run_recovery_check`) and
the graceful-degradation sweep
(:func:`repro.analysis.degradation.measure_degradation`).
"""

from __future__ import annotations

import pytest

from repro.analysis.degradation import (
    DegradationCurve,
    DegradationPoint,
    measure_degradation,
    model_for_rate,
)
from repro.core.warmup import WarmupNode
from repro.exceptions import ConfigurationError
from repro.faults import (
    FAULT_SPURIOUS_BIT,
    FAULT_TWIN_BIT,
    FaultBurst,
    FaultModel,
    FaultyChannel,
    FleetFault,
    NodeCrash,
    PulseDrop,
    StateCorruption,
    apply_fault_model,
    corruptible_fields,
    fault_counts,
    is_fault_seq,
    merge_events,
    rate_threshold,
    roll_u64,
)
from repro.faults.model import KIND_DROP, KIND_SEND
from repro.simulator.engine import Engine
from repro.simulator.fleet import run_nonoriented_fleet, run_terminating_fleet
from repro.simulator.ring import build_oriented_ring
from repro.verification.statistical import (
    RECOVERY_CLASSES,
    flips_for_instance,
    ids_for_instance,
    run_recovery_check,
)


class TestModelValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ConfigurationError):
            FaultModel(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultModel(spurious_rate=-0.1)

    def test_drop_plus_duplicate_share_one_roll(self):
        with pytest.raises(ConfigurationError):
            FaultModel(drop_rate=0.7, duplicate_rate=0.5)

    def test_all_zero_model_is_the_valid_noop(self):
        assert FaultModel().is_noop
        assert FaultModel.none().is_noop
        assert not FaultModel(drop_rate=0.1).is_noop
        assert not FaultModel(crashes=(NodeCrash(node=0, at_round=1),)).is_noop

    def test_burst_window(self):
        with pytest.raises(ConfigurationError):
            FaultBurst(start=0)
        with pytest.raises(ConfigurationError):
            FaultBurst(start=1, length=0)
        burst = FaultBurst(start=3, length=2)
        assert [burst.covers(k) for k in range(1, 7)] == [
            False, False, True, True, False, False,
        ]
        assert FaultBurst(start=2).covers(10**9)  # unbounded tail

    def test_crash_schedule(self):
        with pytest.raises(ConfigurationError):
            NodeCrash(node=-1, at_round=1)
        with pytest.raises(ConfigurationError):
            NodeCrash(node=0, at_round=0)
        with pytest.raises(ConfigurationError):
            NodeCrash(node=0, at_round=1, restart_after=0)
        crash = NodeCrash(node=2, at_round=3, restart_after=2)
        assert [crash.down(r) for r in range(1, 7)] == [
            False, False, True, True, False, False,
        ]
        assert crash.restarts_at(5) and not crash.restarts_at(4)
        forever = NodeCrash(node=2, at_round=3)
        assert forever.down(10**6) and not forever.restarts_at(10**6)

    def test_corruption_and_drop_clauses_validate(self):
        with pytest.raises(ConfigurationError):
            StateCorruption(node=0, at_round=0)
        with pytest.raises(ConfigurationError):
            StateCorruption(node=0, at_round=1, value=-3)
        with pytest.raises(ConfigurationError):
            PulseDrop(round_index=1, node=0, direction="sideways")
        with pytest.raises(ConfigurationError):
            PulseDrop(round_index=0, node=0)
        assert FleetFault is PulseDrop  # historical alias survives

    def test_corruptible_fields_trace_to_kernel_schemas(self):
        assert corruptible_fields("warmup") == ("rho_cw", "sigma_cw")
        assert "pending_ccw" in corruptible_fields("terminating")
        assert corruptible_fields("nonoriented") == (
            "rho_cw", "sigma_cw", "rho_ccw", "sigma_ccw",
        )
        with pytest.raises(ConfigurationError):
            corruptible_fields("anonymous")


class TestCounterRolls:
    def test_roll_is_pure_in_its_coordinates(self):
        base = roll_u64(7, KIND_DROP, 3, 5, 2, 1)
        assert roll_u64(7, KIND_DROP, 3, 5, 2, 1) == base
        # Moving any single coordinate lands on a different 64-bit value.
        assert roll_u64(8, KIND_DROP, 3, 5, 2, 1) != base
        assert roll_u64(7, KIND_SEND, 3, 5, 2, 1) != base
        assert roll_u64(7, KIND_DROP, 4, 5, 2, 1) != base
        assert roll_u64(7, KIND_DROP, 3, 6, 2, 1) != base
        assert roll_u64(7, KIND_DROP, 3, 5, 3, 1) != base
        assert roll_u64(7, KIND_DROP, 3, 5, 2, 2) != base

    def test_rate_threshold_endpoints(self):
        assert rate_threshold(0.0) == 0
        assert rate_threshold(1.0) == 1 << 64  # certain means certain
        assert rate_threshold(2.0) == 1 << 64
        mid = rate_threshold(0.5)
        assert abs(mid - (1 << 63)) <= 1

    def test_send_outcome_replays_in_any_order(self):
        model = FaultModel(drop_rate=0.3, duplicate_rate=0.3,
                           spurious_rate=0.2, seed=11)
        forward = [model.send_outcome(4, i) for i in range(50)]
        backward = [model.send_outcome(4, i) for i in reversed(range(50))]
        assert forward == list(reversed(backward))
        outcomes = {c for c, _ in forward}
        assert outcomes <= {0, 1, 2} and len(outcomes) > 1

    def test_burst_gates_random_rates(self):
        burst = FaultBurst(start=1, length=3)
        model = FaultModel(drop_rate=1.0, seed=0, burst=burst)
        # Ordinal k of send index i is i + 1: only the first 3 sends drop.
        assert [model.send_outcome(0, i)[0] for i in range(5)] == [0, 0, 0, 1, 1]


def _fresh_channel(model):
    topology = build_oriented_ring([WarmupNode(1), WarmupNode(2)])
    return FaultyChannel(topology.network.channels[0], model)


class TestFaultyChannelSeededReplay:
    def test_same_seed_same_fault_pattern_bit_for_bit(self):
        model = FaultModel(drop_rate=0.25, duplicate_rate=0.25,
                           spurious_rate=0.15, seed=9)
        first = _fresh_channel(model)
        second = _fresh_channel(model)
        for seq in range(1, 40):
            first.enqueue(send_seq=seq)
            second.enqueue(send_seq=seq)
        assert list(first._queue) == list(second._queue)
        assert (first.dropped, first.duplicated, first.injected) == (
            second.dropped, second.duplicated, second.injected,
        )
        assert first.dropped + first.duplicated + first.injected > 0

    def test_different_seed_different_pattern(self):
        a = _fresh_channel(FaultModel(drop_rate=0.5, seed=1))
        b = _fresh_channel(FaultModel(drop_rate=0.5, seed=2))
        for seq in range(1, 60):
            a.enqueue(send_seq=seq)
            b.enqueue(send_seq=seq)
        assert list(a._queue) != list(b._queue)

    def test_twin_and_spurious_pulses_are_tagged(self):
        dup = _fresh_channel(FaultModel(duplicate_rate=1.0))
        dup.enqueue(send_seq=5)
        seqs = [seq for seq, _ in dup._queue]
        assert seqs == [5, 5 | FAULT_TWIN_BIT]
        assert [is_fault_seq(s) for s in seqs] == [False, True]

        spur = _fresh_channel(FaultModel(spurious_rate=1.0))
        spur.enqueue(send_seq=5)
        seqs = [seq for seq, _ in spur._queue]
        assert seqs == [5, 5 | FAULT_SPURIOUS_BIT]
        assert is_fault_seq(seqs[1]) and spur.injected == 1

    def test_fleet_only_clauses_rejected_by_event_compiler(self):
        topology = build_oriented_ring([WarmupNode(1), WarmupNode(2)])
        model = FaultModel(crashes=(NodeCrash(node=0, at_round=2),))
        with pytest.raises(ConfigurationError, match="fleet"):
            apply_fault_model(topology.network, model)

    def test_engine_run_replays_identically(self):
        model = FaultModel(drop_rate=0.2, duplicate_rate=0.2, seed=4)
        counts = []
        for _ in range(2):
            nodes = [WarmupNode(i) for i in [3, 7, 5]]
            topology = build_oriented_ring(nodes)
            apply_fault_model(topology.network, model)
            result = Engine(topology.network, max_steps=50_000).run()
            counts.append((result.total_sent, fault_counts(topology.network)))
        assert counts[0] == counts[1]
        assert counts[0][1]["dropped"] + counts[0][1]["duplicated"] > 0


class TestFleetFaultEvents:
    def test_fault_events_reported_and_mergeable(self):
        model = FaultModel(drop_rate=0.05, seed=3)
        result = run_nonoriented_fleet(
            [[3, 1, 2], [2, 3, 1]], faults=model, backend="python"
        )
        assert result.fault_events is not None
        assert result.fault_events["dropped"] > 0
        merged = merge_events(result.fault_events, {"dropped": 1, "restarts": 2})
        assert merged["dropped"] == result.fault_events["dropped"] + 1
        assert merged["restarts"] == 2

    def test_noop_model_reports_no_events(self):
        result = run_terminating_fleet([[2, 1, 3]], fault=FaultModel.none())
        assert result.fault_events is None
        assert result.leaders == [[2]]

    def test_corruption_field_validated_against_schema(self):
        bad = FaultModel(
            corruptions=(StateCorruption(node=0, at_round=1, field="pending_cw"),)
        )
        with pytest.raises(ConfigurationError):
            run_nonoriented_fleet([[2, 1, 3]], faults=bad)


class TestRecoveryHarness:
    def test_control_arm_recovers_everything(self):
        report = run_recovery_check(
            algorithm="nonoriented", n=4, id_max=30, samples=24, block_size=8
        )
        assert report.all_recovered
        assert (report.recovered, report.wrong_stable, report.stuck) == (24, 0, 0)
        assert not report.counterexamples
        assert report.fault_events == {}

    def test_drops_classify_and_counterexamples_replay(self):
        report = run_recovery_check(
            algorithm="nonoriented",
            n=5,
            id_max=40,
            samples=32,
            block_size=8,
            faults=FaultModel(drop_rate=0.05, seed=2),
            max_counterexamples=2,
        )
        assert report.recovered + report.wrong_stable + report.stuck == 32
        assert report.stuck > 0
        assert report.fault_events["dropped"] > 0
        for ce in report.counterexamples:
            assert ce.classification in RECOVERY_CLASSES
            assert "first violated invariant" in ce.message
            assert ce.replay() is not None  # still failing on solo replay

    def test_crash_on_terminating_ring_goes_stuck(self):
        report = run_recovery_check(
            algorithm="terminating",
            n=4,
            id_max=30,
            samples=16,
            block_size=8,
            faults=FaultModel(crashes=(NodeCrash(node=1, at_round=3),)),
            max_counterexamples=1,
        )
        assert report.stuck == 16
        assert report.counterexamples[0].classification == "stuck"

    def test_legacy_fleet_fault_still_accepted(self):
        drop = FleetFault(round_index=3, node=1, instance=2)
        report = run_recovery_check(
            algorithm="terminating", n=4, id_max=30, samples=8,
            block_size=8, faults=drop, max_counterexamples=1,
        )
        assert report.recovered + report.wrong_stable + report.stuck == 8
        assert report.stuck == 1  # only the targeted instance suffers

    def test_sampled_coordinates_are_pure_functions(self):
        assert ids_for_instance(7, 5, 3, 100) == ids_for_instance(7, 5, 3, 100)
        assert flips_for_instance(7, 5, 3) == flips_for_instance(7, 5, 3)
        assert flips_for_instance(7, 5, 6) != flips_for_instance(7, 6, 6) or (
            flips_for_instance(7, 5, 6) != flips_for_instance(8, 5, 6)
        )
        assert len(flips_for_instance(0, 0, 9)) == 9


class TestDegradationSweep:
    def test_rate_grid_validation(self):
        with pytest.raises(ConfigurationError):
            measure_degradation([])
        with pytest.raises(ConfigurationError):
            measure_degradation([0.1, 0.0])
        with pytest.raises(ConfigurationError):
            model_for_rate("gamma-rays", 0.1, 0)

    def test_model_for_rate_sets_only_its_knob(self):
        drop = model_for_rate("drop", 0.2, 5)
        assert (drop.drop_rate, drop.duplicate_rate, drop.seed) == (0.2, 0.0, 5)
        assert model_for_rate("duplicate", 0.2, 5).duplicate_rate == 0.2
        assert model_for_rate("spurious", 0.2, 5).spurious_rate == 0.2

    def test_small_sweep_degrades_gracefully(self):
        curve = measure_degradation(
            [0.0, 0.05], kind="drop", n=4, id_max=30, samples=24, block_size=8
        )
        assert isinstance(curve, DegradationCurve)
        assert curve.clean_at_zero
        assert curve.monotone_within_bands()
        assert [p.rate for p in curve.points] == [0.0, 0.05]
        zero, heavy = curve.points
        assert isinstance(zero, DegradationPoint)
        assert zero.success_rate == 1.0
        assert heavy.success_rate < 1.0  # drops must actually hurt
        payload = curve.to_dict()
        assert payload["clean_at_zero"] and payload["monotone_within_bands"]
        assert len(payload["points"]) == 2
        assert 0.0 <= heavy.low <= heavy.success_rate <= heavy.high <= 1.0
