"""Tests for the statistical model checker (sampled-schedule verification).

The checker (:mod:`repro.verification.statistical`) runs the invariant
battery over fleet-sampled instances.  Correct code must yield pass-rate
1.0; a :class:`~repro.simulator.fleet.FleetFault` injection (pulse loss —
outside the model) must be caught, localized by block bisection to the
exact instance, and reproduced by :meth:`Counterexample.replay`.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import clopper_pearson_interval
from repro.exceptions import ConfigurationError
from repro.simulator.fleet import HAVE_NUMPY, FleetFault
from repro.verification.statistical import (
    Counterexample,
    ids_for_instance,
    run_statistical_check,
)

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


# -- ID sampling ------------------------------------------------------------


def test_ids_for_instance_is_deterministic_and_distinct():
    a = ids_for_instance(7, 3, 8, 100)
    assert a == ids_for_instance(7, 3, 8, 100)
    assert len(a) == 8 == len(set(a))
    assert all(1 <= x <= 100 for x in a)
    assert a != ids_for_instance(8, 3, 8, 100)  # seed matters
    assert a != ids_for_instance(7, 4, 8, 100)  # index matters


def test_ids_for_instance_independent_of_sharding():
    # The assignment of global sample index 37 must not depend on which
    # block or process evaluates it.
    direct = ids_for_instance(0, 37, 6, 64)
    report_a = run_statistical_check(n=6, id_max=64, samples=40, block_size=8)
    report_b = run_statistical_check(n=6, id_max=64, samples=40, block_size=40)
    assert report_a.clean and report_b.clean
    assert direct == ids_for_instance(report_a.seed, 37, 6, 64)


# -- clean runs -------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_clean_run_passes_with_exact_interval(backend):
    report = run_statistical_check(
        n=6, id_max=60, samples=300, block_size=64, backend=backend
    )
    assert report.clean
    assert report.violations == 0
    assert report.pass_rate == 1.0
    assert report.counterexamples == []
    assert (report.rate_low, report.rate_high) == clopper_pearson_interval(
        300, 300, confidence=report.confidence
    )
    assert report.rate_high == 1.0
    assert 0.97 < report.rate_low < 1.0


def test_seeded_scheduler_clean():
    report = run_statistical_check(
        n=5, id_max=40, samples=60, block_size=16,
        scheduler="seeded", sched_seed=11,
    )
    assert report.clean


def test_multiprocess_run_matches_serial():
    serial = run_statistical_check(n=5, id_max=40, samples=120, block_size=32)
    forked = run_statistical_check(
        n=5, id_max=40, samples=120, block_size=32, processes=2
    )
    assert serial.clean and forked.clean
    assert serial.violations == forked.violations


# -- fault injection: find, localize, replay --------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_injected_drop_is_caught_localized_and_replayed(backend):
    fault = FleetFault(round_index=3, node=1, direction="cw", instance=10)
    report = run_statistical_check(
        n=6, id_max=50, samples=64, block_size=64, backend=backend, fault=fault
    )
    assert not report.clean
    assert report.violations == 1
    assert len(report.counterexamples) == 1
    ce = report.counterexamples[0]
    assert ce.instance == 10  # bisection attributed the exact instance
    assert "conservation" in ce.message or "instance 10" in ce.message
    assert list(ce.ids) == ids_for_instance(report.seed, 10, 6, 50)
    replayed = ce.replay()
    assert replayed is not None  # deterministic: always reproduces
    assert "instance 10" in replayed


def test_fault_in_untested_instance_is_silent():
    # Instance index beyond the sample range: nothing to catch.
    fault = FleetFault(round_index=3, node=1, direction="cw", instance=999)
    report = run_statistical_check(
        n=6, id_max=50, samples=32, block_size=32, fault=fault
    )
    assert report.clean


def test_counterexample_budget_is_respected():
    # Fault with instance=None hits EVERY instance; the checker must
    # still terminate quickly, recording at most max_counterexamples.
    fault = FleetFault(round_index=3, node=0, direction="cw", instance=None)
    report = run_statistical_check(
        n=6, id_max=50, samples=48, block_size=16, fault=fault,
        max_counterexamples=2,
    )
    assert not report.clean
    assert len(report.counterexamples) <= 2
    assert report.violations >= len(report.counterexamples)
    assert report.pass_rate < 1.0


def test_fleet_fault_validation():
    with pytest.raises(ConfigurationError):
        FleetFault(round_index=0, node=0)
    with pytest.raises(ConfigurationError):
        FleetFault(round_index=1, node=0, direction="sideways")
    with pytest.raises(ConfigurationError):
        FleetFault(round_index=1, node=0, count=0)


# -- configuration errors ---------------------------------------------------


def test_configuration_validation():
    with pytest.raises(ConfigurationError, match="terminating"):
        run_statistical_check(algorithm="warmup", samples=1)
    with pytest.raises(ConfigurationError, match="sample"):
        run_statistical_check(samples=0)
    with pytest.raises(ConfigurationError, match="distinct"):
        run_statistical_check(n=10, id_max=5, samples=1)
    with pytest.raises(ConfigurationError, match="block_size"):
        run_statistical_check(samples=1, block_size=0)


# -- report arithmetic ------------------------------------------------------

def test_report_interval_with_failures():
    fault = FleetFault(round_index=3, node=0, direction="cw", instance=None)
    report = run_statistical_check(
        n=5, id_max=30, samples=20, block_size=4, fault=fault,
        max_counterexamples=1,
    )
    low, high = clopper_pearson_interval(
        report.samples - report.violations,
        report.samples,
        confidence=report.confidence,
    )
    assert (report.rate_low, report.rate_high) == (low, high)
