"""Closed-form complexity helpers and the statistics toolkit."""

import math

import pytest

from repro.analysis.complexity import (
    algorithm2_pulses,
    algorithm3_doubled_pulses,
    algorithm3_successor_pulses,
    compare_with_baselines,
    crossover_id_max,
    lower_bound_gap,
    warmup_pulses,
)
from repro.analysis.stats import (
    BernoulliEstimate,
    estimate_success_rate,
    wilson_interval,
)
from repro.exceptions import ConfigurationError


class TestFormulas:
    def test_values(self):
        assert warmup_pulses(4, 7) == 28
        assert algorithm2_pulses(4, 7) == 60
        assert algorithm3_doubled_pulses(4, 7) == 108
        assert algorithm3_successor_pulses(4, 7) == 60

    def test_theorem2_matches_theorem1(self):
        # The paper's punchline: the non-oriented algorithm costs the
        # same as the oriented terminating one.
        for n, id_max in [(1, 1), (3, 9), (16, 400)]:
            assert algorithm3_successor_pulses(n, id_max) == algorithm2_pulses(
                n, id_max
            )

    def test_doubled_is_roughly_twice_successor(self):
        ratio = algorithm3_doubled_pulses(8, 1000) / algorithm3_successor_pulses(
            8, 1000
        )
        assert 1.9 < ratio < 2.0

    def test_infeasible_idmax_rejected(self):
        with pytest.raises(ConfigurationError):
            algorithm2_pulses(8, 5)
        with pytest.raises(ConfigurationError):
            warmup_pulses(0, 5)


class TestFormulasMatchMeasurements:
    def test_against_real_runs(self):
        from repro.core.terminating import run_terminating
        from repro.core.warmup import run_warmup

        ids = [5, 12, 3, 9]
        assert run_warmup(ids).total_pulses == warmup_pulses(4, 12)
        assert run_terminating(ids).total_pulses == algorithm2_pulses(4, 12)


class TestComparison:
    def test_comparison_row_contents(self):
        row = compare_with_baselines(16, 160)
        assert row.content_oblivious == 16 * 321
        assert row.lower_bound == 16 * int(math.log2(10))
        assert set(row.baselines) == {
            "chang_roberts_worst",
            "lelann",
            "hirschberg_sinclair_bound",
            "peterson_bound",
            "dolev_klawe_rodeh_bound",
        }

    def test_oblivious_overhead_grows_with_idmax(self):
        small = compare_with_baselines(16, 16).oblivious_overhead
        large = compare_with_baselines(16, 10_000).oblivious_overhead
        assert large > small

    def test_crossover_solver(self):
        n, baseline = 16, 1024
        crossover = crossover_id_max(n, baseline)
        assert algorithm2_pulses(n, crossover) > baseline
        if crossover > n:
            assert algorithm2_pulses(n, crossover - 1) <= baseline

    def test_crossover_is_at_least_n(self):
        assert crossover_id_max(10, 0) == 10

    def test_lower_bound_gap_infinite_when_bound_vanishes(self):
        assert lower_bound_gap(8, 10) == math.inf

    def test_lower_bound_gap_finite_and_large(self):
        gap = lower_bound_gap(4, 4 * 1024)
        assert 1 < gap < math.inf


class TestWilson:
    def test_perfect_success(self):
        low, high = wilson_interval(100, 100)
        assert high == pytest.approx(1.0)
        assert 0.9 < low < 1.0

    def test_interval_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_more_trials_tighten_interval(self):
        low_small, high_small = wilson_interval(8, 10)
        low_big, high_big = wilson_interval(800, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestEstimator:
    def test_counts_and_rate(self):
        estimate = estimate_success_rate(lambda seed: seed % 4 != 0, range(100))
        assert estimate.trials == 100
        assert estimate.successes == 75
        assert estimate.rate == 0.75
        assert estimate.low < 0.75 < estimate.high

    def test_consistency_predicate(self):
        estimate = BernoulliEstimate(successes=99, trials=100, low=0.93, high=0.999)
        assert estimate.consistent_with_at_least(0.95)
        assert not estimate.consistent_with_at_least(0.9999)
