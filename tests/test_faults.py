"""Fault injection: the model's channel assumptions are load-bearing.

The paper's channels corrupt content but "cannot be dropped or injected".
These tests *violate* each assumption and verify the algorithms' formal
guarantees measurably break — a negative reproduction of the modelling
discussion (and a sanity check that our positive results aren't vacuous).
"""

import pytest

from repro.core.common import LeaderState
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.exceptions import ConfigurationError, SimulationLimitExceeded
from repro.simulator.engine import Engine
from repro.simulator.faults import FaultPlan, FaultyChannel, apply_fault_plan, total_faults
from repro.simulator.ring import build_oriented_ring


def run_with_faults(node_cls, ids, plan, max_steps=200_000):
    nodes = [node_cls(node_id) for node_id in ids]
    topology = build_oriented_ring(nodes)
    apply_fault_plan(topology.network, plan)
    engine = Engine(topology.network, max_steps=max_steps)
    result = engine.run()
    return nodes, result, topology.network


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_rate=-0.1, duplicate_rate=0.1)

    def test_noop_plan_is_accepted(self):
        # The all-zero plan is the explicit "no faults" value so sweeps and
        # CLI call sites need not branch on None (rejection of a pointless
        # plan is a CLI-level warning only).
        plan = FaultPlan()
        assert plan.is_noop
        assert FaultPlan.none().is_noop
        nodes, result, network = run_with_faults(WarmupNode, [2, 5, 3], plan)
        assert total_faults(network) == (0, 0)
        assert all(node.state is not None for node in nodes)

    def test_plan_is_reproducible(self):
        plan = FaultPlan(drop_rate=0.3, seed=5)
        _n1, r1, net1 = run_with_faults(WarmupNode, [2, 5, 3], plan)
        _n2, r2, net2 = run_with_faults(WarmupNode, [2, 5, 3], plan)
        assert r1.total_sent == r2.total_sent
        assert total_faults(net1) == total_faults(net2)

    def test_cannot_apply_after_traffic(self):
        nodes = [WarmupNode(1), WarmupNode(2)]
        topology = build_oriented_ring(nodes)
        topology.network.channels[0].enqueue(send_seq=1)
        with pytest.raises(ConfigurationError):
            apply_fault_plan(topology.network, FaultPlan(drop_rate=0.5))


class TestPulseLossBreaksTheGuarantees:
    def test_warmup_loses_conservation(self):
        # Lemma 6/Corollary 13 need every pulse conserved: with drops the
        # stabilized counters fall short of IDmax somewhere.
        plan = FaultPlan(drop_rate=0.4, seed=1)
        nodes, result, network = run_with_faults(WarmupNode, [3, 9, 5, 2], plan)
        dropped, _ = total_faults(network)
        assert dropped > 0
        assert any(node.rho_cw < 9 for node in nodes)

    def test_warmup_can_elect_nobody_or_wrong_node(self):
        # Sweep seeds: with heavy loss some run must end without the
        # unique correct leader (the max-ID node in state Leader alone).
        bad_runs = 0
        for seed in range(20):
            plan = FaultPlan(drop_rate=0.5, seed=seed)
            nodes, _result, network = run_with_faults(WarmupNode, [3, 9, 5, 2], plan)
            if total_faults(network)[0] == 0:
                continue
            leaders = [i for i, node in enumerate(nodes) if node.state is LeaderState.LEADER]
            if leaders != [1]:
                bad_runs += 1
        assert bad_runs > 0

    def test_terminating_loses_termination(self):
        # Theorem 1's termination needs the CW/CCW instances to complete;
        # dropped pulses strand nodes in non-terminated limbo.
        stuck_runs = 0
        for seed in range(10):
            plan = FaultPlan(drop_rate=0.3, seed=seed)
            nodes, result, network = run_with_faults(
                TerminatingNode, [3, 9, 5, 2], plan
            )
            if total_faults(network)[0] == 0:
                continue
            if not result.all_terminated:
                stuck_runs += 1
        assert stuck_runs > 0


class TestPulseInjectionBreaksTheGuarantees:
    def test_duplicates_overshoot_corollary14(self):
        # With injected twins, some node receives more than IDmax pulses
        # (impossible in the model, Corollary 14) or the extra pulse
        # circulates forever (livelock) — both are model-violation
        # signatures.
        signatures = 0
        for seed in range(10):
            plan = FaultPlan(duplicate_rate=0.3, seed=seed)
            try:
                nodes, _result, network = run_with_faults(
                    WarmupNode, [3, 9, 5, 2], plan, max_steps=20_000
                )
            except SimulationLimitExceeded:
                signatures += 1
                continue
            if total_faults(network)[1] == 0:
                continue
            if any(node.rho_cw > 9 for node in nodes):
                signatures += 1
        assert signatures > 0

    def test_counters_track_fault_kinds(self):
        plan = FaultPlan(drop_rate=0.2, duplicate_rate=0.2, seed=3)
        try:
            _nodes, _result, network = run_with_faults(
                WarmupNode, [4, 8, 6], plan, max_steps=20_000
            )
        except SimulationLimitExceeded:
            pytest.skip("this seed livelocks before quiescence; fine")
        dropped, duplicated = total_faults(network)
        assert dropped + duplicated > 0


class TestPulseLossBreaksOrientation:
    def test_nonoriented_ring_misorients_under_loss(self):
        # Theorem 2's orientation rests on the exact per-direction pulse
        # counts; with loss, some run must fail to orient or to elect.
        from repro.core.nonoriented import NonOrientedNode, NonOrientedOutcome
        from repro.core.nonoriented import IdScheme
        from repro.simulator.ring import build_nonoriented_ring

        broken = 0
        for seed in range(15):
            ids = [3, 9, 5, 2]
            nodes = [NonOrientedNode(i, scheme=IdScheme.SUCCESSOR) for i in ids]
            topology = build_nonoriented_ring(
                nodes, flips=[True, False, True, False]
            )
            apply_fault_plan(topology.network, FaultPlan(drop_rate=0.3, seed=seed))
            run = Engine(topology.network, max_steps=100_000).run()
            outcome = NonOrientedOutcome(
                ids=ids, nodes=nodes, topology=topology, run=run,
                scheme=IdScheme.SUCCESSOR,
            )
            if total_faults(topology.network)[0] == 0:
                continue
            if outcome.leaders != [1] or not outcome.orientation_consistent:
                broken += 1
        assert broken > 0


class TestFaultyChannelUnit:
    def test_certain_drop(self):
        base_nodes = [WarmupNode(1), WarmupNode(2)]
        topology = build_oriented_ring(base_nodes)
        channel = FaultyChannel(topology.network.channels[0], FaultPlan(drop_rate=1.0))
        channel.enqueue(send_seq=1)
        channel.enqueue(send_seq=2)
        assert channel.pending == 0
        assert channel.dropped == 2

    def test_certain_duplicate(self):
        base_nodes = [WarmupNode(1), WarmupNode(2)]
        topology = build_oriented_ring(base_nodes)
        channel = FaultyChannel(
            topology.network.channels[0], FaultPlan(duplicate_rate=1.0)
        )
        channel.enqueue(send_seq=1)
        assert channel.pending == 2
        assert channel.duplicated == 1

    def test_faultless_baseline_is_unaffected_control(self):
        # Control arm: the same rings without a fault plan still meet the
        # exact Theorem 1 counts (guards against the fault harness itself
        # perturbing results).
        nodes = [TerminatingNode(node_id) for node_id in [3, 9, 5, 2]]
        topology = build_oriented_ring(nodes)
        result = Engine(topology.network).run()
        assert result.total_sent == 4 * (2 * 9 + 1)
