"""Algorithm 1 (Section 3.1): quiescently stabilizing leader election.

Reproduces the warm-up algorithm's guarantees exactly as stated:
Corollary 13 (quiescence with all counters at IDmax), the exact message
complexity ``n * IDmax``, single-leader stabilization at the maximal ID,
and Lemma 16's extension to non-unique IDs.
"""

import pytest

from repro.core.common import LeaderState
from repro.core.warmup import WarmupNode, run_warmup
from repro.exceptions import ConfigurationError, ProtocolViolation
from repro.simulator.ring import build_oriented_ring
from repro.simulator.engine import run_to_quiescence


class TestElectsMaximum:
    def test_leader_is_unique_max_node(self, ids, make_scheduler):
        outcome = run_warmup(ids, scheduler=make_scheduler())
        expected = max(range(len(ids)), key=lambda i: ids[i])
        assert outcome.leaders == [expected]

    def test_all_other_nodes_are_non_leaders(self, ids, make_scheduler):
        outcome = run_warmup(ids, scheduler=make_scheduler())
        for index, state in enumerate(outcome.states):
            if index not in outcome.leaders:
                assert state is LeaderState.NON_LEADER

    def test_single_node_ring(self):
        outcome = run_warmup([4])
        assert outcome.leaders == [0]
        assert outcome.total_pulses == 4


class TestExactComplexity:
    def test_total_pulses_equal_n_times_idmax(self, ids, make_scheduler):
        # Corollary 13: every node sends and receives exactly IDmax pulses.
        outcome = run_warmup(ids, scheduler=make_scheduler())
        assert outcome.total_pulses == len(ids) * max(ids)

    def test_per_node_counters_stabilize_at_idmax(self, ids):
        outcome = run_warmup(ids)
        id_max = max(ids)
        for node in outcome.nodes:
            assert node.rho_cw == id_max
            assert node.sigma_cw == id_max

    def test_complexity_is_schedule_invariant(self, ids):
        from tests.conftest import SCHEDULER_FACTORIES

        counts = {
            name: run_warmup(ids, scheduler=factory()).total_pulses
            for name, factory in SCHEDULER_FACTORIES.items()
        }
        assert len(set(counts.values())) == 1, counts


class TestNonUniqueIds:
    """Lemma 16: Algorithm 1 tolerates duplicated IDs."""

    def test_unique_maximum_elects_single_leader(self):
        ids = [3, 3, 7, 3, 3]
        outcome = run_warmup(ids)
        assert outcome.leaders == [2]
        assert outcome.total_pulses == len(ids) * 7

    def test_duplicated_maximum_elects_all_its_holders(self):
        ids = [5, 2, 5, 1]
        outcome = run_warmup(ids)
        assert outcome.leaders == [0, 2]

    def test_all_equal_ids_all_become_leaders(self):
        ids = [4, 4, 4]
        outcome = run_warmup(ids)
        assert outcome.leaders == [0, 1, 2]
        assert outcome.total_pulses == 12

    def test_counters_still_stabilize_at_idmax(self):
        ids = [2, 6, 2, 6, 2]
        outcome = run_warmup(ids)
        for node in outcome.nodes:
            assert node.rho_cw == 6 == node.sigma_cw


class TestStabilizationNotTermination:
    def test_nodes_never_terminate(self, ids):
        outcome = run_warmup(ids)
        assert not any(outcome.run.terminated)
        assert outcome.run.quiescent

    def test_leader_state_is_revised_by_later_pulses(self):
        # A node transiently claims leadership when rho_cw hits its ID and
        # must revert on the next pulse.  With IDs [1, 3], node 0 claims
        # at its first pulse, then reverts.
        outcome = run_warmup([1, 3])
        assert outcome.states[0] is LeaderState.NON_LEADER
        assert outcome.states[1] is LeaderState.LEADER


class TestInputValidation:
    def test_zero_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_warmup([0, 3])

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_warmup([-2, 3])

    def test_non_integer_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_warmup([2.5, 3])

    def test_boolean_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_warmup([True, 3])

    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            run_warmup([])


class TestChannelDiscipline:
    def test_ccw_pulse_is_a_wiring_violation(self):
        # Algorithm 1 only ever uses the CW channel; a CCW arrival means
        # the harness mis-wired the ring and must fail loudly.
        node = WarmupNode(2)

        class Prodder(WarmupNode):
            def on_init(self, api):
                api.send(0)  # a CCW pulse towards its CCW neighbor

        topology = build_oriented_ring([node, Prodder(3)])
        with pytest.raises(ProtocolViolation):
            run_to_quiescence(topology.network)
