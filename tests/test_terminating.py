"""Theorem 1 (Algorithm 2): quiescently terminating leader election.

The paper's main result, checked exactly:

* a single leader — the maximal-ID node — and everyone else Non-Leader;
* message complexity **exactly** ``n * (2 * IDmax + 1)``;
* quiescent termination: all nodes terminate, no pulse is ever delivered
  to (or stranded at) a terminated node;
* the leader terminates last (the Section 1.1 composition hook).
"""

import pytest

from repro.core.common import LeaderState
from repro.core.terminating import TerminatingNode, run_terminating
from repro.exceptions import ConfigurationError
from tests.conftest import SCHEDULER_FACTORIES, id_workloads


class TestTheorem1Correctness:
    def test_unique_leader_is_max_id_node(self, ids, make_scheduler):
        outcome = run_terminating(ids, scheduler=make_scheduler())
        assert outcome.leaders == [outcome.expected_leader]

    def test_everyone_else_outputs_non_leader(self, ids, make_scheduler):
        outcome = run_terminating(ids, scheduler=make_scheduler())
        for index, output in enumerate(outcome.outputs):
            expected = (
                LeaderState.LEADER
                if index == outcome.expected_leader
                else LeaderState.NON_LEADER
            )
            assert output is expected

    def test_all_nodes_terminate(self, ids, make_scheduler):
        outcome = run_terminating(ids, scheduler=make_scheduler())
        assert outcome.run.all_terminated


class TestTheorem1ExactComplexity:
    def test_pulse_count_exactly_matches_formula(self, ids, make_scheduler):
        outcome = run_terminating(ids, scheduler=make_scheduler())
        assert outcome.total_pulses == outcome.theorem1_message_bound

    def test_formula_value(self):
        outcome = run_terminating([3, 7, 5, 2])
        assert outcome.theorem1_message_bound == 4 * (2 * 7 + 1) == 60
        assert outcome.total_pulses == 60

    def test_complexity_depends_on_idmax_not_id_sum(self):
        # Two assignments with the same IDmax must cost the same.
        a = run_terminating([1, 2, 3, 50]).total_pulses
        b = run_terminating([47, 48, 49, 50]).total_pulses
        assert a == b == 4 * (2 * 50 + 1)

    def test_complexity_is_schedule_invariant(self, ids):
        counts = {
            name: run_terminating(ids, scheduler=factory()).total_pulses
            for name, factory in SCHEDULER_FACTORIES.items()
        }
        assert len(set(counts.values())) == 1, counts

    def test_per_direction_counters(self, ids):
        # Each instance of Algorithm 1 delivers exactly IDmax pulses per
        # node; the termination pulse adds one CCW reception everywhere.
        outcome = run_terminating(ids)
        id_max = max(ids)
        for index, node in enumerate(outcome.nodes):
            assert node.rho_cw == id_max
            assert node.sigma_cw == id_max
            assert node.rho_ccw == id_max + 1
            expected_sigma_ccw = id_max + 1 if index == outcome.expected_leader else id_max + 1
            # every node forwards the termination pulse except the leader,
            # which originated it instead: sigma_ccw == IDmax + 1 for all.
            assert node.sigma_ccw == expected_sigma_ccw


class TestQuiescentTermination:
    def test_no_violations_under_any_scheduler(self, ids, make_scheduler):
        outcome = run_terminating(
            ids, scheduler=make_scheduler(), strict_quiescence=True
        )
        assert outcome.run.quiescently_terminated

    def test_no_ignored_deliveries(self, ids, make_scheduler):
        outcome = run_terminating(ids, scheduler=make_scheduler())
        assert outcome.run.trace.ignored_deliveries == 0

    def test_leader_terminates_last(self, ids, make_scheduler):
        outcome = run_terminating(ids, scheduler=make_scheduler())
        assert outcome.run.termination_order[-1] == outcome.expected_leader

    def test_termination_order_follows_the_ccw_pulse(self):
        # The termination pulse travels CCW from the leader, so nodes
        # terminate in counterclockwise ring order starting at leader-1.
        ids = [1, 2, 3, 4, 9]  # leader at index 4
        outcome = run_terminating(ids)
        assert outcome.run.termination_order == [3, 2, 1, 0, 4]

    def test_internal_buffers_empty_at_termination(self, ids):
        outcome = run_terminating(ids)
        for node in outcome.nodes:
            assert node.pending_cw == 0
            assert node.pending_ccw == 0


class TestDegenerateRings:
    def test_single_node_elects_itself(self):
        outcome = run_terminating([1])
        assert outcome.leaders == [0]
        assert outcome.total_pulses == 3  # 1*(2*1+1)

    @pytest.mark.parametrize("node_id", [1, 2, 3, 8, 20])
    def test_single_node_complexity_scales_with_own_id(self, node_id):
        outcome = run_terminating([node_id])
        assert outcome.total_pulses == 2 * node_id + 1

    @pytest.mark.parametrize("ids", [[1, 2], [2, 1], [5, 9], [100, 7]])
    def test_two_node_rings(self, ids):
        outcome = run_terminating(ids)
        assert outcome.leaders == [outcome.expected_leader]
        assert outcome.total_pulses == 2 * (2 * max(ids) + 1)
        assert outcome.run.quiescently_terminated


class TestLargerSweeps:
    def test_random_rings(self):
        import random

        rng = random.Random(99)
        for trial in range(25):
            n = rng.randint(1, 24)
            ids = rng.sample(range(1, 500), n)
            outcome = run_terminating(
                ids, scheduler=SCHEDULER_FACTORIES["random0"]()
            )
            assert outcome.leaders == [outcome.expected_leader], ids
            assert outcome.total_pulses == n * (2 * max(ids) + 1), ids
            assert outcome.run.quiescently_terminated, ids

    def test_rotations_of_same_id_set_agree_on_cost(self):
        base = [4, 11, 6, 2, 9]
        costs = set()
        winners = set()
        for shift in range(len(base)):
            rotated = base[shift:] + base[:shift]
            outcome = run_terminating(rotated)
            costs.add(outcome.total_pulses)
            winners.add(rotated[outcome.leaders[0]])
        assert costs == {5 * (2 * 11 + 1)}
        assert winners == {11}


class TestInputValidation:
    def test_duplicate_ids_rejected(self):
        # Theorem 1 requires unique IDs; uniqueness of IDmax in particular
        # is what makes the line-14 event unique to the leader.
        with pytest.raises(ConfigurationError):
            run_terminating([4, 4, 2])

    def test_zero_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_terminating([0, 1])

    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            run_terminating([])
