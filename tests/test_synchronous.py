"""The synchronous substrate and TimeSlice election (related-work contrast)."""

import pytest

from repro.core.common import LeaderState
from repro.exceptions import ConfigurationError, ProtocolViolation, SimulationLimitExceeded
from repro.simulator.ring import build_oriented_ring
from repro.synchronous import (
    SyncEngine,
    TimeCodedElectionNode,
    run_time_coded_election,
)
from repro.synchronous.engine import SyncNode


class TestTimeSliceCorrectness:
    @pytest.mark.parametrize(
        "ids", [[5], [1, 2], [2, 1], [3, 1, 4], [7, 9, 8, 2, 6], [10, 20, 30]]
    )
    def test_minimum_id_node_wins(self, ids):
        result = run_time_coded_election(ids)
        winners = [
            index
            for index, output in enumerate(result.outputs)
            if output is LeaderState.LEADER
        ]
        assert winners == [ids.index(min(ids))]
        assert result.all_terminated

    def test_everyone_learns_the_leader_id(self):
        ids = [4, 2, 9, 7]
        nodes = [TimeCodedElectionNode(node_id, ring_size=4) for node_id in ids]
        topology = build_oriented_ring(nodes, defective=False)
        SyncEngine(topology.network).run()
        assert all(node.leader_id == 2 for node in nodes)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            run_time_coded_election([3, 3])


class TestTimeSliceComplexity:
    """The related-work claim: O(n) messages in synchronous rings."""

    @pytest.mark.parametrize("ids", [[5], [3, 1, 4], [7, 9, 8, 2, 6], [6, 5, 4, 3, 2, 1]])
    def test_exactly_n_messages(self, ids):
        result = run_time_coded_election(ids)
        assert result.total_sent == len(ids)

    def test_messages_independent_of_id_magnitude(self):
        # The asynchronous content-oblivious world pays Theta(n*IDmax);
        # synchrony buys the count down to n — paid in rounds instead.
        small = run_time_coded_election([1, 2, 3])
        large = run_time_coded_election([101, 102, 103])
        assert small.total_sent == large.total_sent == 3

    def test_rounds_scale_with_minimum_id(self):
        # Round cost IDmin * n (+1 for the final delivery round).
        for ids in ([3, 1, 4], [7, 9, 8, 2, 6], [10, 20, 30]):
            result = run_time_coded_election(ids)
            n, id_min = len(ids), min(ids)
            assert (id_min - 1) * n < result.rounds_used <= id_min * n + 1

    def test_time_message_tradeoff_vs_algorithm2(self):
        from repro.core.terminating import run_terminating

        ids = [40, 10, 30, 20]
        sync = run_time_coded_election(ids)
        async_oblivious = run_terminating(ids).total_pulses
        assert sync.total_sent == 4
        assert async_oblivious == 4 * (2 * 40 + 1)
        assert sync.total_sent < async_oblivious


class TestTimeSliceTerminationOrder:
    def test_suppressed_nodes_terminate_as_claim_passes(self):
        ids = [4, 2, 9, 7]  # min at index 1
        result = run_time_coded_election(ids)
        rounds = result.termination_rounds
        # claim origin round: (2-1)*4 = 4; hop h delivers at round 4+h.
        assert rounds[2] == 5
        assert rounds[3] == 6
        assert rounds[0] == 7
        assert rounds[1] == 8  # originator, on its claim's return


class TestSyncEngineMachinery:
    def test_non_terminating_protocol_hits_round_bound(self):
        class Mute(SyncNode):
            def on_round(self, api, round_number, inbox):
                pass  # never terminates

        nodes = [Mute(), Mute()]
        topology = build_oriented_ring(nodes, defective=False)
        with pytest.raises(SimulationLimitExceeded):
            SyncEngine(topology.network, max_rounds=50).run()

    def test_send_after_terminate_rejected(self):
        class Rogue(SyncNode):
            def on_round(self, api, round_number, inbox):
                api.terminate("bye")
                api.send(1)

        nodes = [Rogue(), Rogue()]
        topology = build_oriented_ring(nodes, defective=False)
        with pytest.raises(ProtocolViolation):
            SyncEngine(topology.network).run()

    def test_messages_take_exactly_one_round(self):
        deliveries = []

        class Echo(SyncNode):
            def on_round(self, api, round_number, inbox):
                for _port, content in inbox:
                    deliveries.append((round_number, content))
                if round_number == 0:
                    api.send(1, "ping")
                if round_number >= 2:
                    api.terminate("done")

        nodes = [Echo(), Echo()]
        topology = build_oriented_ring(nodes, defective=False)
        SyncEngine(topology.network).run()
        assert all(round_number == 1 for round_number, _ in deliveries)
        assert [content for _, content in deliveries] == ["ping", "ping"]

    def test_defective_sync_channels_erase_content(self):
        received = []

        class Probe(SyncNode):
            def on_round(self, api, round_number, inbox):
                received.extend(content for _port, content in inbox)
                if round_number == 0:
                    api.send(1, "secret")
                if round_number >= 2:
                    api.terminate(None)

        nodes = [Probe(), Probe()]
        topology = build_oriented_ring(nodes, defective=True)
        SyncEngine(topology.network).run()
        assert received == [None, None]  # pulses, not payloads

    def test_silence_is_observable(self):
        # The defining synchronous power: a node can count empty rounds.
        class SilenceCounter(SyncNode):
            def __init__(self):
                super().__init__()
                self.silent_rounds = 0

            def on_round(self, api, round_number, inbox):
                if not inbox:
                    self.silent_rounds += 1
                if round_number == 9:
                    api.terminate(self.silent_rounds)

        nodes = [SilenceCounter(), SilenceCounter()]
        topology = build_oriented_ring(nodes, defective=False)
        result = SyncEngine(topology.network).run()
        assert result.outputs == [10, 10]
