"""Execution-trace renderers: deterministic text artifacts."""

import pytest

from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.simulator.engine import Engine
from repro.simulator.ring import build_oriented_ring
from repro.simulator.timeline import (
    render_event_log,
    render_space_time,
    summarize_counters,
)


def recorded_run(node_cls, ids):
    nodes = [node_cls(node_id) for node_id in ids]
    topology = build_oriented_ring(nodes)
    return Engine(topology.network, record_events=True).run()


class TestEventLog:
    def test_requires_recorded_events(self):
        nodes = [WarmupNode(1), WarmupNode(2)]
        topology = build_oriented_ring(nodes)
        result = Engine(topology.network).run()
        with pytest.raises(ValueError):
            render_event_log(result)

    def test_log_contains_all_event_kinds(self):
        result = recorded_run(TerminatingNode, [1, 2])
        log = render_event_log(result)
        assert "send" in log
        assert "deliver" in log
        assert "halt" in log

    def test_event_count_matches_trace(self):
        result = recorded_run(WarmupNode, [2, 3])
        log = render_event_log(result)
        expected_lines = result.trace.total_sent + result.trace.total_received
        assert len(log.splitlines()) == expected_lines

    def test_truncation(self):
        result = recorded_run(WarmupNode, [2, 3])
        log = render_event_log(result, max_events=4)
        assert len(log.splitlines()) == 4

    def test_log_is_deterministic(self):
        log_a = render_event_log(recorded_run(TerminatingNode, [2, 5, 3]))
        log_b = render_event_log(recorded_run(TerminatingNode, [2, 5, 3]))
        assert log_a == log_b

    def test_sequence_numbers_are_sorted(self):
        result = recorded_run(TerminatingNode, [1, 3])
        seqs = [int(line.split()[0]) for line in render_event_log(result).splitlines()]
        assert seqs == sorted(seqs)


class TestSpaceTime:
    def test_header_and_rows(self):
        result = recorded_run(WarmupNode, [1, 2])
        diagram = render_space_time(result, 2, labels=["a", "b"])
        lines = diagram.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        # one row per delivery: Algorithm 1 delivers n*IDmax = 4 pulses
        assert len(lines) == 1 + 4

    def test_termination_rows_marked(self):
        result = recorded_run(TerminatingNode, [1, 2])
        diagram = render_space_time(result, 2)
        assert "##" in diagram

    def test_port_marks_present(self):
        result = recorded_run(TerminatingNode, [1, 2])
        diagram = render_space_time(result, 2)
        assert "*0" in diagram  # CW arrivals
        assert "*1" in diagram  # CCW arrivals

    def test_max_rows_truncates(self):
        result = recorded_run(TerminatingNode, [3, 6])
        diagram = render_space_time(result, 2, max_rows=5)
        assert diagram.splitlines()[-1].startswith("...")

    def test_requires_recorded_events(self):
        nodes = [WarmupNode(1), WarmupNode(2)]
        topology = build_oriented_ring(nodes)
        result = Engine(topology.network).run()
        with pytest.raises(ValueError):
            render_space_time(result, 2)


class TestCounterSummary:
    def test_summary_without_event_recording(self):
        nodes = [TerminatingNode(node_id) for node_id in [2, 4]]
        topology = build_oriented_ring(nodes)
        result = Engine(topology.network).run()
        summary = summarize_counters(result, 2)
        assert "total sent: 18" in summary  # 2*(2*4+1)
        assert "true" in summary  # terminated column

    def test_row_per_node(self):
        result = recorded_run(WarmupNode, [1, 2, 3])
        summary = summarize_counters(result, 3)
        assert len(summary.splitlines()) == 1 + 3 + 1
