"""The whole surface must degrade gracefully with numba uninstalled.

Numba is the ``[jit]`` extra — the top accelerator tier, never a
requirement (:mod:`repro.core.kernels.compiled` is the single import
site, guarded exactly like :mod:`repro.accel`'s numpy import).  This
suite launches one subprocess with a shadow ``numba`` module (raising
ImportError) first on ``PYTHONPATH`` and asserts:

* the compiled module imports fine and reports ``HAVE_NUMBA = False``;
* backend resolution skips the compiled tier (``auto`` lands on numpy
  when available, python otherwise) and pinning ``compiled`` explicitly
  raises a :class:`~repro.exceptions.ConfigurationError` naming the
  ``[jit]`` extra;
* ``warm_compiled`` is a quiet no-op;
* the CLI surface — including ``--backend auto`` sweeps and statistical
  verification — works end to end, and ``--backend compiled`` exits
  with a clean one-line error instead of a traceback.

Mirror of tests/test_numpy_free.py, one accelerator tier up.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

DRIVER = textwrap.dedent(
    """
    import sys

    from repro.accel import (
        HAVE_NUMPY,
        jit_available,
        maybe_warm_compiled,
        resolve_backend,
        warm_compiled,
    )
    from repro.core.kernels.compiled import HAVE_NUMBA
    from repro.exceptions import ConfigurationError

    assert not HAVE_NUMBA, "numba shadow failed; test is vacuous"
    assert not jit_available()
    assert resolve_backend("auto") == ("numpy" if HAVE_NUMPY else "python")
    assert warm_compiled() == 0.0
    maybe_warm_compiled("auto")  # must be silent and side-effect free
    try:
        resolve_backend("compiled")
    except ConfigurationError as error:
        assert "[jit]" in str(error), str(error)
    else:
        raise AssertionError("compiled backend resolved without numba")

    from repro.cli import main

    COMMANDS = [
        ["elect", "--ids", "3,7,5,2"],
        ["verify", "--ids", "3,1,2"],
        ["verify", "--statistical", "--samples", "40", "--n", "5",
         "--id-max", "40", "--block-size", "16"],
        ["verify", "--statistical", "--samples", "16", "--n", "4",
         "--id-max", "30", "--backend", "auto", "--scheduler", "seeded"],
        ["sweep", "--workload", "whp", "--n", "4", "--trials", "8",
         "--backend", "auto"],
        ["sweep", "--workload", "placements", "--n", "5", "--trials", "8"],
    ]

    for argv in COMMANDS:
        code = main(argv)
        assert code == 0, f"{argv} exited {code}"
        print("OK", " ".join(argv))

    # Pinning the compiled backend must fail with a clean one-line error
    # (SystemExit carrying the ConfigurationError message), no traceback.
    try:
        main([
            "verify", "--statistical", "--samples", "16", "--n", "4",
            "--id-max", "30", "--backend", "compiled",
        ])
    except SystemExit as stop:
        assert "[jit]" in str(stop.code), stop.code
        print("OK --backend compiled refused cleanly")
    else:
        raise AssertionError("--backend compiled succeeded without numba")
    print("ALL-COMMANDS-PASSED")
    """
)


def test_surface_without_numba(tmp_path):
    (tmp_path / "numba.py").write_text(
        'raise ImportError("numba disabled by tests/test_jit_free.py")\n'
    )
    env = dict(os.environ)
    env.pop("REPRO_BACKEND", None)
    env["PYTHONPATH"] = os.pathsep.join([str(tmp_path), str(REPO_SRC)])
    proc = subprocess.run(
        [sys.executable, "-c", DRIVER],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "ALL-COMMANDS-PASSED" in proc.stdout


def test_surface_without_numba_or_numpy(tmp_path):
    # Both extras absent: the pure-Python floor carries everything.
    (tmp_path / "numba.py").write_text('raise ImportError("no numba")\n')
    (tmp_path / "numpy.py").write_text('raise ImportError("no numpy")\n')
    env = dict(os.environ)
    env.pop("REPRO_BACKEND", None)
    env["PYTHONPATH"] = os.pathsep.join([str(tmp_path), str(REPO_SRC)])
    probe = textwrap.dedent(
        """
        from repro.accel import HAVE_NUMPY, jit_available, resolve_backend
        from repro.core.kernels.compiled import HAVE_NUMBA
        assert not HAVE_NUMPY and not HAVE_NUMBA
        assert not jit_available()
        assert resolve_backend("auto") == "python"
        from repro.cli import main
        assert main(["elect", "--ids", "3,7,5,2"]) == 0
        assert main(["verify", "--statistical", "--samples", "16",
                     "--n", "4", "--id-max", "30"]) == 0
        print("PURE-PYTHON-FLOOR-OK")
        """
    )
    proc = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "PURE-PYTHON-FLOOR-OK" in proc.stdout
