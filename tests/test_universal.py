"""The universal content-oblivious interpreter (full Corollary 5).

Arbitrary content-carrying asynchronous ring algorithms, executed over a
network that delivers only pulses: the headline is Chang-Roberts 1979 —
an algorithm whose every message is an ID — running where messages
cannot carry a single bit.
"""

import pytest

from repro.core.composition import run_simulated_composed
from repro.defective.ring_algorithms import (
    SimBroadcast,
    SimChangRoberts,
    SimConvergecastSum,
    SimPingPong,
)
from repro.defective.universal import (
    SimulatedRingNode,
    simulate_ring_algorithm,
)
from repro.exceptions import ConfigurationError
from tests.conftest import SCHEDULER_FACTORIES


class TestSimChangRoberts:
    def test_elects_max_and_everyone_agrees(self):
        outcome = simulate_ring_algorithm([SimChangRoberts(i) for i in [3, 7, 5]])
        assert outcome.outputs == [
            ("follower", 7),
            ("leader", 7),
            ("follower", 7),
        ]

    @pytest.mark.parametrize("ids", [[1, 2, 3], [3, 2, 1], [5, 1, 9, 4], [2, 8, 6, 4, 7]])
    def test_matches_native_chang_roberts(self, ids):
        # The same algorithm run natively (content channels) and under
        # the interpreter (pulse channels) must elect the same node.
        from repro.baselines import run_baseline
        from repro.baselines.chang_roberts import ChangRobertsNode

        native = run_baseline(ChangRobertsNode, ids)
        simulated = simulate_ring_algorithm([SimChangRoberts(i) for i in ids])
        winner = native.leaders[0]
        for index, output in enumerate(simulated.outputs):
            role, leader_id = output
            assert leader_id == ids[winner]
            assert (role == "leader") == (index == winner)

    def test_quiescent_termination_leader_of_interpreter_last(self):
        outcome = simulate_ring_algorithm(
            [SimChangRoberts(i) for i in [3, 7, 5]], leader=2
        )
        assert outcome.run.quiescently_terminated
        assert outcome.run.termination_order[-1] == 2  # interpreter root

    def test_root_placement_irrelevant_to_simulated_result(self):
        ids = [5, 1, 9, 4]
        results = set()
        for leader in range(4):
            outcome = simulate_ring_algorithm(
                [SimChangRoberts(i) for i in ids], leader=leader
            )
            results.add(tuple(outcome.outputs))
        assert len(results) == 1


class TestSimBroadcast:
    def test_all_nodes_learn_the_value(self):
        outcome = simulate_ring_algorithm(
            [SimBroadcast(42)] + [SimBroadcast() for _ in range(4)], leader=0
        )
        assert outcome.outputs == [42] * 5

    def test_bidirectional_waves_die_cleanly(self):
        outcome = simulate_ring_algorithm(
            [SimBroadcast(7)] + [SimBroadcast() for _ in range(2)], leader=0
        )
        assert outcome.outputs == [7] * 3
        assert outcome.run.quiescently_terminated


class TestSimConvergecast:
    @pytest.mark.parametrize("leader", [0, 1, 2, 3])
    def test_sum_from_any_root(self, leader):
        inputs = [5, 2, 8, 1]
        outcome = simulate_ring_algorithm(
            [SimConvergecastSum(v) for v in inputs], leader=leader
        )
        assert outcome.outputs == [16] * 4

    def test_zero_inputs(self):
        outcome = simulate_ring_algorithm([SimConvergecastSum(0) for _ in range(3)])
        assert outcome.outputs == [0, 0, 0]


class TestSimPingPong:
    def test_bidirectional_fifo_preserved(self):
        outcome = simulate_ring_algorithm([SimPingPong(3) for _ in range(4)], leader=1)
        neighbor = outcome.simulated_nodes[2]  # CW neighbor of the root
        assert neighbor.pings_seen == [3, 2, 1, 0]  # exact send order
        assert outcome.outputs[1] == ("root", 4)
        assert outcome.outputs[2] == ("neighbor", 4)

    def test_uninvolved_nodes_stay_silent(self):
        outcome = simulate_ring_algorithm([SimPingPong(2) for _ in range(5)], leader=0)
        assert outcome.outputs[2] is None
        assert outcome.outputs[3] is None


class TestInterpreterMechanics:
    def test_schedule_invariance_of_simulated_outputs(self):
        ids = [3, 7, 5]
        baseline = None
        for factory in SCHEDULER_FACTORIES.values():
            outcome = simulate_ring_algorithm(
                [SimChangRoberts(i) for i in ids], scheduler=factory()
            )
            if baseline is None:
                baseline = outcome.outputs
            assert outcome.outputs == baseline

    def test_token_hops_bounded_by_activity(self):
        # Quiescence detection: hops ~ (#active circles + 1 clean circle
        # + slack), far below any naive bound.
        outcome = simulate_ring_algorithm([SimChangRoberts(i) for i in [1, 2, 3]])
        n = 3
        assert outcome.token_hops <= 10 * n

    def test_all_interpreter_nodes_learn_ring_size(self):
        outcome = simulate_ring_algorithm([SimBroadcast(1)] + [SimBroadcast()] * 3)
        assert all(node.ring_size == 4 for node in outcome.nodes)

    def test_needs_three_nodes(self):
        with pytest.raises(ConfigurationError):
            simulate_ring_algorithm([SimBroadcast(1), SimBroadcast()])

    def test_bad_leader_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_ring_algorithm([SimBroadcast(1)] + [SimBroadcast()] * 2, leader=5)

    def test_negative_payload_rejected(self):
        class Bad(SimulatedRingNode):
            def on_start(self, ctx):
                ctx.send_cw(-1)

            def on_receive(self, ctx, direction, payload):  # pragma: no cover
                pass

        with pytest.raises(ConfigurationError):
            simulate_ring_algorithm([Bad(), Bad(), Bad()])

    def test_silent_algorithm_reaches_quiescence_fast(self):
        class Mute(SimulatedRingNode):
            def on_start(self, ctx):
                pass

            def on_receive(self, ctx, direction, payload):  # pragma: no cover
                pass

        outcome = simulate_ring_algorithm([Mute(), Mute(), Mute()])
        assert outcome.outputs == [None, None, None]
        assert outcome.run.quiescently_terminated


class TestComposedUniversal:
    """No pre-existing root + no content: the conjecture fully refuted."""

    def test_elect_then_simulate_chang_roberts(self):
        ids = [4, 9, 2]
        outcome = run_simulated_composed(
            ids, [SimChangRoberts(i) for i in ids]
        )
        assert outcome.leader == 1  # phase-1 winner (max ID) roots phase 2
        assert outcome.outputs == [
            ("follower", 9),
            ("leader", 9),
            ("follower", 9),
        ]
        assert outcome.run.quiescently_terminated
        assert outcome.run.termination_order[-1] == 1

    def test_elect_then_broadcast(self):
        ids = [4, 9, 2, 7]
        sims = [SimBroadcast() for _ in ids]
        sims[1] = SimBroadcast(33)  # the future winner carries the value
        outcome = run_simulated_composed(ids, sims)
        assert outcome.outputs == [33] * 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            run_simulated_composed([1, 2, 3], [SimBroadcast(1)])

    def test_too_small_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            run_simulated_composed([1, 2], [SimBroadcast(1), SimBroadcast()])
