"""Unit tests for the per-algorithm transition kernels.

The kernels (:mod:`repro.core.kernels`) are the single source of truth
for the protocol semantics, so they get direct tests independent of any
backend: chunk-exactness (one ``step`` with ``k`` pulses equals ``k``
single-pulse steps, bit for bit), the registry contract, schema
projections, skip-margin consistency between the scalar helpers and the
NumPy lowerings, and the exact pulse-bound formulas.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.common import LeaderState
from repro.core.kernels import (
    KERNELS,
    get_kernel,
    nonoriented,
    terminating,
    warmup,
)
from repro.core.schema import CONFIG, OBSERVABLE, TRANSIENT
from repro.exceptions import ProtocolViolation
from repro.simulator.fleet import HAVE_NUMPY
from repro.simulator.node import PORT_ONE, PORT_ZERO

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

CW_ARRIVAL = PORT_ZERO
CCW_ARRIVAL = PORT_ONE


# -- registry ---------------------------------------------------------------


def test_registry_resolves_every_algorithm():
    assert set(KERNELS) == {"warmup", "terminating", "nonoriented", "anonymous"}
    for name, info in KERNELS.items():
        assert get_kernel(name) is info
        assert hasattr(info.module, "make_state")
        assert hasattr(info.module, "init")
        assert hasattr(info.module, "step")
        assert hasattr(info.module, "pulse_bound")
        assert hasattr(info.module, "SCHEMA")


def test_registry_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown algorithm"):
        get_kernel("quantum")


def test_anonymous_shares_the_nonoriented_kernel():
    info = get_kernel("anonymous")
    assert info.module is nonoriented
    assert info.samples_ids


# -- schema sanity ----------------------------------------------------------


@pytest.mark.parametrize("kernel", [warmup, terminating, nonoriented])
def test_schema_matches_state_dataclass(kernel):
    state = (
        kernel.make_state(3)
        if kernel is not nonoriented
        else kernel.make_state(3)
    )
    for field in kernel.SCHEMA.fields:
        assert hasattr(state, field.name), field.name
        assert field.role in (CONFIG, OBSERVABLE, TRANSIENT)
    # Every schema field is readable through project().
    projected = kernel.SCHEMA.project(state)
    assert set(projected) == set(kernel.SCHEMA.field_names())


def test_transient_fields_excluded_from_fingerprints():
    state = terminating.make_state(5)
    base = terminating.SCHEMA.state_fingerprint(state)
    state.pending_cw += 3  # transient: buffered-not-processed pulses
    assert terminating.SCHEMA.state_fingerprint(state) == base


# -- chunk-exactness --------------------------------------------------------


def _drive_chunked(kernel, state, port, count, chunks):
    """Apply ``count`` pulses split into the given chunk sizes."""
    emissions = []
    verdicts = []
    for chunk in chunks:
        _, emitted, verdict = kernel.step(state, port, chunk)
        emissions.extend(emitted)
        if verdict is not None:
            verdicts.append(verdict)
    assert sum(chunks) == count
    return emissions, verdicts


def _emission_totals(emissions):
    totals = {}
    for port, count in emissions:
        totals[port] = totals.get(port, 0) + count
    return totals


@settings(max_examples=50, deadline=None)
@given(
    node_id=st.integers(min_value=1, max_value=20),
    count=st.integers(min_value=1, max_value=40),
    data=st.data(),
)
def test_warmup_step_is_chunk_exact(node_id, count, data):
    whole = warmup.make_state(node_id)
    _, emissions_whole, _ = warmup.step(whole, CW_ARRIVAL, count)

    chunks = data.draw(_chunkings(count))
    split = warmup.make_state(node_id)
    emissions_split, _ = _drive_chunked(warmup, split, CW_ARRIVAL, count, chunks)

    assert dataclasses.asdict(whole) == dataclasses.asdict(split)
    assert _emission_totals(emissions_whole) == _emission_totals(emissions_split)


@st.composite
def _chunkings(draw, total=None):
    """A random split of ``total`` into positive chunks."""
    remaining = total
    chunks = []
    while remaining > 0:
        chunk = draw(st.integers(min_value=1, max_value=remaining))
        chunks.append(chunk)
        remaining -= chunk
    return chunks


def _drive_terminating_ring(ids, chunker):
    """One full Algorithm 2 run on a synchronous-ish loop, with deliveries
    split by ``chunker``; returns (states, total emissions per node)."""
    n = len(ids)
    states = [terminating.make_state(node_id) for node_id in ids]
    flight_cw = [0] * n
    flight_ccw = [0] * n
    verdicts = [None] * n
    for v, state in enumerate(states):
        _, emissions, verdict = terminating.init(state)
        for port, count in emissions:
            if port == 1:  # CW send
                flight_cw[(v + 1) % n] += count
            else:
                flight_ccw[(v - 1) % n] += count
    total = n
    while any(flight_cw) or any(flight_ccw):
        arriving_cw, flight_cw = flight_cw, [0] * n
        arriving_ccw, flight_ccw = flight_ccw, [0] * n
        for v, state in enumerate(states):
            for port, count in ((CW_ARRIVAL, arriving_cw[v]), (CCW_ARRIVAL, arriving_ccw[v])):
                if not count or verdicts[v] is not None:
                    continue
                for chunk in chunker(count):
                    _, emissions, verdict = terminating.step(state, port, chunk)
                    for out_port, out_count in emissions:
                        total += out_count
                        if out_port == 1:
                            flight_cw[(v + 1) % n] += out_count
                        else:
                            flight_ccw[(v - 1) % n] += out_count
                    if verdict is not None:
                        verdicts[v] = verdict
    return states, verdicts, total


@settings(max_examples=30, deadline=None)
@given(ids=st.lists(st.integers(1, 15), min_size=2, max_size=5, unique=True))
def test_terminating_whole_run_chunking_invariance(ids):
    whole_states, whole_verdicts, whole_total = _drive_terminating_ring(
        ids, lambda count: [count]
    )
    split_states, split_verdicts, split_total = _drive_terminating_ring(
        ids, lambda count: [1] * count
    )
    assert [dataclasses.asdict(s) for s in whole_states] == [
        dataclasses.asdict(s) for s in split_states
    ]
    assert whole_verdicts == split_verdicts
    assert whole_total == split_total == terminating.pulse_bound(ids)
    leader = max(range(len(ids)), key=lambda v: ids[v])
    assert [v is LeaderState.LEADER for v in whole_verdicts] == [
        v == leader for v in range(len(ids))
    ]


@settings(max_examples=50, deadline=None)
@given(
    node_id=st.integers(min_value=1, max_value=20),
    count=st.integers(min_value=1, max_value=40),
    port=st.sampled_from([PORT_ZERO, PORT_ONE]),
    data=st.data(),
)
def test_nonoriented_step_is_chunk_exact(node_id, count, port, data):
    whole = nonoriented.make_state(node_id)
    _, emissions_whole, _ = nonoriented.step(whole, port, count)

    chunks = data.draw(_chunkings(count))
    split = nonoriented.make_state(node_id)
    emissions_split, _ = _drive_chunked(nonoriented, split, port, count, chunks)

    assert dataclasses.asdict(whole) == dataclasses.asdict(split)
    assert _emission_totals(emissions_whole) == _emission_totals(emissions_split)


# -- per-kernel semantics ---------------------------------------------------


def test_warmup_rejects_ccw_pulses():
    state = warmup.make_state(4)
    with pytest.raises(ProtocolViolation, match="CW channel only"):
        warmup.step(state, CCW_ARRIVAL, 1)


def test_warmup_absorbs_exactly_one_pulse_at_id():
    state = warmup.make_state(3)
    _, emissions, _ = warmup.step(state, CW_ARRIVAL, 5)
    # 5 pulses arrive; the one landing on rho == ID is absorbed.
    assert _emission_totals(emissions) == {1: 4}
    assert state.rho_cw == 5
    assert state.state is LeaderState.NON_LEADER


def test_terminating_step_after_terminated_buffers_silently():
    state = terminating.make_state(2)
    state.terminated = True
    _, emissions, verdict = terminating.step(state, CW_ARRIVAL, 3)
    assert emissions == () and verdict is None
    assert state.pending_cw == 3  # buffered exactly as the stopped loop


def test_terminating_drain_is_idempotent_when_quiet():
    state = terminating.make_state(4)
    terminating.init(state)
    snapshot = dataclasses.asdict(state)
    emissions, verdict = terminating.drain(state)
    assert emissions == () and verdict is None
    assert dataclasses.asdict(state) == snapshot


def test_pulse_bounds_match_the_paper():
    ids = [5, 9, 2, 7]
    assert warmup.pulse_bound(ids) == 4 * 9  # Corollary 13: n * IDmax
    assert terminating.pulse_bound(ids) == 4 * 19  # Theorem 1: n(2 IDmax + 1)
    assert nonoriented.pulse_bound(ids, "successor") == 4 * (2 * 9 + 1)
    assert nonoriented.pulse_bound(ids, "doubled") == 4 * (4 * 9 - 1)


def test_nonoriented_virtual_id_schemes():
    assert nonoriented.IdScheme.SUCCESSOR.virtual_ids(5) == (5, 6)
    assert nonoriented.IdScheme.DOUBLED.virtual_ids(5) == (9, 10)


# -- skip margins: scalar vs NumPy lowering --------------------------------


@settings(max_examples=50, deadline=None)
@given(
    node_id=st.integers(min_value=1, max_value=30),
    rho_cw=st.integers(min_value=0, max_value=35),
)
def test_warmup_skip_margins_scalar_vs_numpy(node_id, rho_cw):
    if not HAVE_NUMPY:
        pytest.skip("numpy not installed")
    import numpy as np

    scalar = warmup.skip_margin(node_id, rho_cw)
    margins = warmup.skip_margins_np(
        np, np.array([[node_id]]), np.array([[rho_cw]])
    )
    lowered = int(margins[0][0])
    if scalar is None:
        assert lowered >= np.iinfo(np.int64).max // 2
    else:
        assert lowered == scalar


@settings(max_examples=50, deadline=None)
@given(
    node_id=st.integers(min_value=1, max_value=30),
    rho_cw=st.integers(min_value=0, max_value=35),
    lag=st.integers(min_value=0, max_value=35),
)
def test_terminating_ccw_margin_never_exceeds_lag(node_id, rho_cw, lag):
    rho_ccw = max(0, rho_cw - lag)
    margin = terminating.ccw_skip_margin(node_id, rho_cw, rho_ccw)
    # Lap-skips must never advance rho_ccw past rho_cw (the exit guard).
    assert rho_ccw + margin <= rho_cw
