"""Shared Hypothesis strategies for ring instances.

The metamorphic and differential suites all need the same raw material —
rings of unique positive IDs, rotations, order-preserving relabelings,
port-flip patterns — so the strategies live in one module instead of
being re-derived per test file.  Sizes default to "small enough for the
exhaustive explorers", since several consumers feed the instances to
``explore_all_schedules``; pass explicit bounds for bigger sweeps.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import strategies as st


def unique_id_lists(
    min_size: int = 2, max_size: int = 6, max_id: int = 12
) -> st.SearchStrategy[List[int]]:
    """Clockwise ID assignments: unique positive ints, order significant."""
    return st.lists(
        st.integers(min_value=1, max_value=max_id),
        min_size=min_size,
        max_size=max_size,
        unique=True,
    )


def small_ring_ids(max_size: int = 4, max_id: int = 6) -> st.SearchStrategy[List[int]]:
    """Instances small enough for the unreduced explorer to exhaust."""
    return unique_id_lists(min_size=2, max_size=max_size, max_id=max_id)


@st.composite
def rotated_rings(
    draw, min_size: int = 2, max_size: int = 6, max_id: int = 12
) -> Tuple[List[int], int]:
    """An ID assignment plus a rotation offset ``k`` (``0 <= k < n``).

    Rotating the clockwise ID list relabels ring *positions* without
    touching the ring itself, so every position-independent observable
    (leader ID, total pulses, per-ID final state) must be invariant.
    """
    ids = draw(unique_id_lists(min_size, max_size, max_id))
    k = draw(st.integers(min_value=0, max_value=len(ids) - 1))
    return ids, k


@st.composite
def relabeled_rings(
    draw, min_size: int = 2, max_size: int = 6, max_id: int = 10
) -> Tuple[List[int], List[int]]:
    """An ID assignment plus an order-preserving relabeling of it.

    The relabeling maps the sorted IDs to a strictly larger sorted list
    (positive gaps drawn per rank), so comparisons between any two IDs —
    all the algorithms observe — are preserved while magnitudes change.
    """
    ids = draw(unique_id_lists(min_size, max_size, max_id))
    gaps = draw(
        st.lists(
            st.integers(min_value=1, max_value=5),
            min_size=len(ids),
            max_size=len(ids),
        )
    )
    ranked = sorted(ids)
    new_values = []
    value = 0
    for gap in gaps:
        value += gap
        new_values.append(value)
    mapping = dict(zip(ranked, new_values))
    return ids, [mapping[i] for i in ids]


def flip_patterns(n: int) -> st.SearchStrategy[List[bool]]:
    """Per-node port-flip patterns for a non-oriented ``n``-ring."""
    return st.lists(st.booleans(), min_size=n, max_size=n)


@st.composite
def flipped_rings(
    draw, min_size: int = 2, max_size: int = 5, max_id: int = 10
) -> Tuple[List[int], List[bool]]:
    """An ID assignment together with a port-flip pattern of its size."""
    ids = draw(unique_id_lists(min_size, max_size, max_id))
    flips = draw(flip_patterns(len(ids)))
    return ids, flips


@st.composite
def farm_campaigns(draw):
    """Sweep-farm campaigns over the full workload/parameter space.

    Used by the cache-key property tests: two drawn campaigns whose
    semantic coordinates differ must never share shard keys, while the
    same campaign spelled through differently-ordered dicts must.  The
    campaigns are *specs only* — nothing here is ever executed, so the
    sizes can range freely.
    """
    from repro.farm.campaign import (
        Campaign,
        placements_params,
        recovery_params,
        whp_params,
    )
    from repro.faults.model import FaultModel

    workload = draw(st.sampled_from(["recovery", "whp", "placements"]))
    total = draw(st.integers(min_value=1, max_value=100_000))
    shard_size = draw(st.integers(min_value=1, max_value=1000))
    if workload == "recovery":
        params = recovery_params(
            algorithm=draw(st.sampled_from(["terminating", "nonoriented"])),
            n=draw(st.integers(min_value=2, max_value=12)),
            id_max=draw(st.integers(min_value=8, max_value=256)),
            seed=draw(st.integers(min_value=0, max_value=7)),
            sched_seed=draw(st.integers(min_value=0, max_value=3)),
            scheduler=draw(st.sampled_from(["lockstep", "seeded"])),
            faults=FaultModel(
                drop_rate=draw(st.sampled_from([0.0, 0.01, 0.05])),
                duplicate_rate=draw(st.sampled_from([0.0, 0.02])),
                seed=draw(st.integers(min_value=0, max_value=3)),
            ),
        )
    elif workload == "whp":
        params = whp_params(
            n=draw(st.integers(min_value=2, max_value=64)),
            c=draw(st.sampled_from([1.0, 2.0, 3.0])),
            seed=draw(st.integers(min_value=0, max_value=7)),
        )
    else:
        params = placements_params(
            n=draw(st.integers(min_value=2, max_value=64)),
            seed=draw(st.integers(min_value=0, max_value=7)),
        )
    return Campaign(
        workload, total=total, params=params, shard_size=shard_size
    )
