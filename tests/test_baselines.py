"""The five classic content-carrying baselines, on the same simulator.

Correctness (single leader, agreement, termination) across schedulers
and ID workloads, plus each algorithm's signature message-complexity
behaviour: Chang-Roberts' :math:`\\Theta(n^2)` worst case vs
:math:`O(n\\log n)` good cases, Le Lann's exact :math:`n^2`, and the
:math:`O(n\\log n)` ceilings of HS/Peterson/DKR.
"""

import math
import random

import pytest

from repro.baselines import ALL_BASELINES, run_baseline
from repro.baselines.chang_roberts import (
    ChangRobertsNode,
    chang_roberts_worst_case_messages,
)
from repro.baselines.hirschberg_sinclair import (
    HirschbergSinclairNode,
    hirschberg_sinclair_message_ceiling,
)
from repro.baselines.lelann import LeLannNode, lelann_exact_messages
from repro.core.common import LeaderState
from repro.exceptions import ConfigurationError
from tests.conftest import SCHEDULER_FACTORIES, id_workloads

MAX_ELECTING = ("chang_roberts", "lelann", "hirschberg_sinclair", "franklin")


@pytest.mark.parametrize("name", sorted(ALL_BASELINES))
class TestBaselineCorrectness:
    def test_single_leader_and_agreement(self, name, ids, make_scheduler):
        outcome = run_baseline(ALL_BASELINES[name], ids, scheduler=make_scheduler())
        assert len(outcome.leaders) == 1
        assert len(set(outcome.agreed_leader_ids)) == 1
        assert outcome.run.all_terminated

    def test_leader_agreement_value_matches_winner(self, name, ids):
        outcome = run_baseline(ALL_BASELINES[name], ids)
        winner = outcome.leaders[0]
        assert outcome.agreed_leader_ids[0] == outcome.nodes[winner].node_id

    def test_non_leaders_output_non_leader(self, name, ids):
        outcome = run_baseline(ALL_BASELINES[name], ids)
        for index, output in enumerate(outcome.outputs):
            expected = (
                LeaderState.LEADER
                if index == outcome.leaders[0]
                else LeaderState.NON_LEADER
            )
            assert output is expected

    def test_duplicate_ids_rejected(self, name):
        with pytest.raises(ConfigurationError):
            run_baseline(ALL_BASELINES[name], [3, 3, 1])

    def test_single_node_ring(self, name):
        outcome = run_baseline(ALL_BASELINES[name], [7])
        assert outcome.leaders == [0]


@pytest.mark.parametrize("name", MAX_ELECTING)
class TestMaxElecting:
    def test_winner_is_max_id_node(self, name, ids, make_scheduler):
        outcome = run_baseline(ALL_BASELINES[name], ids, scheduler=make_scheduler())
        assert outcome.leaders == [outcome.expected_leader]


class TestChangRobertsComplexity:
    def test_worst_case_descending_clockwise(self):
        # IDs decreasing clockwise: candidate k travels k hops before the
        # maximum swallows it; total = n(n+1)/2 + n announcements.
        for n in (2, 5, 10, 16):
            ids = list(range(n, 0, -1))
            outcome = run_baseline(ChangRobertsNode, ids)
            assert outcome.total_messages == chang_roberts_worst_case_messages(n)

    def test_best_case_ascending_clockwise(self):
        # IDs increasing clockwise: every non-max candidate dies after one
        # hop; the max travels n; plus n announcements -> 3n - 1.
        for n in (2, 5, 10, 16):
            ids = list(range(1, n + 1))
            outcome = run_baseline(ChangRobertsNode, ids)
            assert outcome.total_messages == (n - 1) + n + n

    def test_quadratic_vs_linear_gap_grows(self):
        n = 32
        worst = run_baseline(ChangRobertsNode, list(range(n, 0, -1))).total_messages
        best = run_baseline(ChangRobertsNode, list(range(1, n + 1))).total_messages
        assert worst / best > 5


class TestLeLannComplexity:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 20])
    def test_exactly_n_squared(self, n):
        ids = random.Random(n).sample(range(1, 100), n)
        outcome = run_baseline(LeLannNode, ids)
        assert outcome.total_messages == lelann_exact_messages(n)

    def test_cost_is_schedule_invariant(self):
        ids = [4, 9, 1, 7, 3]
        counts = {
            run_baseline(LeLannNode, ids, scheduler=factory()).total_messages
            for factory in SCHEDULER_FACTORIES.values()
        }
        assert counts == {25}

    def test_every_node_collects_all_ids(self):
        ids = [4, 9, 1, 7, 3]
        outcome = run_baseline(LeLannNode, ids)
        for node in outcome.nodes:
            assert sorted(node.seen_ids) == sorted(ids)

    def test_quiescent_termination(self):
        # Le Lann's FIFO structure terminates quiescently (own ID last).
        outcome = run_baseline(LeLannNode, [4, 9, 1, 7, 3])
        assert outcome.run.quiescently_terminated


class TestHirschbergSinclairComplexity:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_within_n_log_n_ceiling(self, n):
        ids = random.Random(n).sample(range(1, 10 * n), n)
        outcome = run_baseline(HirschbergSinclairNode, ids)
        assert outcome.total_messages <= hirschberg_sinclair_message_ceiling(n)

    def test_beats_lelann_at_scale(self):
        n = 64
        ids = random.Random(1).sample(range(1, 1000), n)
        hs = run_baseline(HirschbergSinclairNode, ids).total_messages
        lelann = run_baseline(LeLannNode, ids).total_messages
        assert hs < lelann


class TestLogNBaselinesScale:
    @pytest.mark.parametrize("name", ["peterson", "dolev_klawe_rodeh"])
    @pytest.mark.parametrize("n", [2, 8, 32, 64])
    def test_within_two_n_log_n_plus_linear(self, name, n):
        ids = random.Random(n + 17).sample(range(1, 10 * n), n)
        outcome = run_baseline(ALL_BASELINES[name], ids)
        phases = math.ceil(math.log2(n)) + 1 if n > 1 else 1
        ceiling = 2 * n * phases + 2 * n
        assert outcome.total_messages <= ceiling, (name, n, outcome.total_messages)


class TestRandomizedSweep:
    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_fifty_random_rings(self, name):
        rng = random.Random(hash(name) & 0xFFFF)
        for trial in range(50):
            n = rng.randint(1, 24)
            ids = rng.sample(range(1, 10_000), n)
            outcome = run_baseline(
                ALL_BASELINES[name],
                ids,
                scheduler=SCHEDULER_FACTORIES["random0"](),
            )
            assert len(outcome.leaders) == 1, (name, ids)
            assert len(set(outcome.agreed_leader_ids)) == 1, (name, ids)
