"""Unit tests for network construction and ring wiring."""

import pytest

from repro.exceptions import ConfigurationError
from repro.simulator.network import Network
from repro.simulator.node import Node, PORT_ONE, PORT_ZERO
from repro.simulator.ring import (
    RingTopology,
    all_flip_patterns,
    build_nonoriented_ring,
    build_oriented_ring,
)


class DummyNode(Node):
    def on_init(self, api):
        pass

    def on_message(self, api, port, content):
        pass


def dummy_nodes(n: int):
    return [DummyNode() for _ in range(n)]


class TestNetwork:
    def test_add_channel_registers_port_map(self):
        network = Network(nodes=dummy_nodes(2))
        channel = network.add_channel(src=(0, 1), dst=(1, 0))
        assert network.channel_for_send(0, 1) is channel

    def test_duplicate_outgoing_port_rejected(self):
        network = Network(nodes=dummy_nodes(2))
        network.add_channel(src=(0, 1), dst=(1, 0))
        with pytest.raises(ConfigurationError):
            network.add_channel(src=(0, 1), dst=(1, 1))

    def test_unknown_node_rejected(self):
        network = Network(nodes=dummy_nodes(2))
        with pytest.raises(ConfigurationError):
            network.add_channel(src=(5, 0), dst=(0, 0))

    def test_unwired_port_send_raises(self):
        network = Network(nodes=dummy_nodes(1))
        with pytest.raises(ConfigurationError):
            network.channel_for_send(0, 0)

    def test_pending_messages_sums_channels(self):
        network = Network(nodes=dummy_nodes(2))
        a = network.add_channel(src=(0, 1), dst=(1, 0))
        b = network.add_channel(src=(1, 1), dst=(0, 0))
        a.enqueue(send_seq=1)
        a.enqueue(send_seq=2)
        b.enqueue(send_seq=3)
        assert network.pending_messages() == 3
        assert {channel.channel_id for channel in network.nonempty_channels()} == {0, 1}


class TestOrientedRing:
    def test_channel_count_is_2n(self):
        for n in (1, 2, 3, 5, 8):
            topology = build_oriented_ring(dummy_nodes(n))
            assert len(topology.network.channels) == 2 * n

    def test_port_one_is_cw_everywhere(self):
        topology = build_oriented_ring(dummy_nodes(4))
        for v in range(4):
            assert topology.cw_port(v) == PORT_ONE
            assert topology.ccw_port(v) == PORT_ZERO

    def test_cw_send_reaches_cw_neighbor_ccw_port(self):
        # Pulses sent clockwise must arrive at the CW neighbor's CCW port
        # (paper: CW pulses are sent from CW ports, arrive at CCW ports).
        topology = build_oriented_ring(dummy_nodes(3))
        network = topology.network
        for v in range(3):
            channel = network.channel_for_send(v, PORT_ONE)
            assert channel.dst == ((v + 1) % 3, PORT_ZERO)

    def test_ccw_send_reaches_ccw_neighbor_cw_port(self):
        topology = build_oriented_ring(dummy_nodes(3))
        network = topology.network
        for v in range(3):
            channel = network.channel_for_send(v, PORT_ZERO)
            assert channel.dst == ((v - 1) % 3, PORT_ONE)

    def test_single_node_ring_self_loops(self):
        topology = build_oriented_ring(dummy_nodes(1))
        network = topology.network
        assert network.channel_for_send(0, PORT_ONE).dst == (0, PORT_ZERO)
        assert network.channel_for_send(0, PORT_ZERO).dst == (0, PORT_ONE)

    def test_two_node_ring_has_four_distinct_channels(self):
        topology = build_oriented_ring(dummy_nodes(2))
        endpoints = {
            (channel.src, channel.dst) for channel in topology.network.channels
        }
        assert len(endpoints) == 4  # a 2-cycle multigraph, not a single edge

    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            build_oriented_ring([])

    def test_neighbors(self):
        topology = build_oriented_ring(dummy_nodes(5))
        assert topology.cw_neighbor(4) == 0
        assert topology.ccw_neighbor(0) == 4


class TestNonOrientedRing:
    def test_flip_swaps_ports(self):
        topology = build_nonoriented_ring(dummy_nodes(3), flips=[True, False, True])
        assert topology.cw_port(0) == PORT_ZERO
        assert topology.cw_port(1) == PORT_ONE
        assert topology.cw_port(2) == PORT_ZERO

    def test_flipped_wiring_still_forms_a_ring(self):
        # Following CW ports from node 0 must traverse every node once.
        topology = build_nonoriented_ring(dummy_nodes(4), flips=[True, True, False, True])
        network = topology.network
        visited = []
        node = 0
        for _ in range(4):
            visited.append(node)
            channel = network.channel_for_send(node, topology.cw_port(node))
            node = channel.dst[0]
        assert sorted(visited) == [0, 1, 2, 3]
        assert node == 0

    def test_flip_count_must_match(self):
        with pytest.raises(ConfigurationError):
            build_nonoriented_ring(dummy_nodes(3), flips=[True])

    def test_random_flips_reproducible(self):
        import random

        topo_a = build_nonoriented_ring(dummy_nodes(6), rng=random.Random(9))
        topo_b = build_nonoriented_ring(dummy_nodes(6), rng=random.Random(9))
        assert topo_a.flips == topo_b.flips

    def test_all_flip_patterns_enumeration(self):
        patterns = all_flip_patterns(3)
        assert len(patterns) == 8
        assert len(set(patterns)) == 8
        assert all(len(pattern) == 3 for pattern in patterns)
