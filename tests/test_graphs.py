"""Graph structure: bridges, 2-edge connectivity, ears, ring validation.

Property-tested against networkx (allowed as a test oracle; the library
code itself is from scratch).
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import BridgeWitnessError, ConfigurationError
from repro.graphs import (
    Graph,
    MultiGraph,
    chain_decomposition,
    ear_decomposition,
    find_bridges,
    is_connected,
    is_ring,
    is_two_edge_connected,
    require_two_edge_connected,
    verify_ear_decomposition,
)


class TestGraphConstruction:
    def test_normalizes_and_deduplicates_edges(self):
        graph = Graph.from_edges(3, [(1, 0), (0, 1), (1, 2)])
        assert graph.edges == frozenset({(0, 1), (1, 2)})

    def test_rejects_self_loops(self):
        with pytest.raises(ConfigurationError):
            Graph.from_edges(2, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Graph.from_edges(2, [(0, 5)])

    def test_ring_constructor(self):
        graph = Graph.ring(5)
        assert len(graph.edges) == 5
        assert all(graph.degree(vertex) == 2 for vertex in range(5))

    def test_ring_needs_three_vertices(self):
        with pytest.raises(ConfigurationError):
            Graph.ring(2)


class TestConnectivity:
    def test_single_vertex_connected(self):
        assert is_connected(Graph.from_edges(1, []))

    def test_disconnected_detected(self):
        assert not is_connected(Graph.from_edges(4, [(0, 1), (2, 3)]))

    def test_path_graph_connected(self):
        assert is_connected(Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)]))


class TestBridges:
    def test_path_is_all_bridges(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert find_bridges(graph) == {(0, 1), (1, 2), (2, 3)}

    def test_cycle_has_no_bridges(self):
        assert find_bridges(Graph.ring(7)) == set()

    def test_barbell_bridge(self):
        # two triangles joined by one edge: that edge is the only bridge
        graph = Graph.from_edges(
            6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
        )
        assert find_bridges(graph) == {(2, 3)}

    def test_matches_networkx_on_random_graphs(self):
        rng = random.Random(0)
        checked = 0
        for trial in range(200):
            n = rng.randint(2, 14)
            m = rng.randint(n - 1, min(n * (n - 1) // 2, 3 * n))
            nx_graph = nx.gnm_random_graph(n, m, seed=trial)
            if not nx.is_connected(nx_graph):
                continue
            graph = Graph.from_edges(n, list(nx_graph.edges()))
            assert find_bridges(graph) == {
                tuple(sorted(edge)) for edge in nx.bridges(nx_graph)
            }
            checked += 1
        assert checked > 50


class TestTwoEdgeConnectivity:
    def test_rings_are_two_edge_connected(self):
        for n in (3, 4, 9):
            assert is_two_edge_connected(Graph.ring(n))

    def test_tree_is_not(self):
        assert not is_two_edge_connected(Graph.from_edges(3, [(0, 1), (1, 2)]))

    def test_disconnected_is_not(self):
        assert not is_two_edge_connected(Graph.from_edges(4, [(0, 1), (2, 3)]))

    def test_single_vertex_convention(self):
        # Matches the paper's n=1 ring being a legal instance.
        assert is_two_edge_connected(Graph.from_edges(1, []))

    def test_matches_networkx_bridge_criterion(self):
        rng = random.Random(7)
        for trial in range(100):
            n = rng.randint(2, 12)
            m = rng.randint(n - 1, min(n * (n - 1) // 2, 3 * n))
            nx_graph = nx.gnm_random_graph(n, m, seed=trial + 1000)
            if not nx.is_connected(nx_graph):
                continue
            graph = Graph.from_edges(n, list(nx_graph.edges()))
            expected = not list(nx.bridges(nx_graph))
            assert is_two_edge_connected(graph) == expected


class TestRingRecognition:
    def test_rings_recognized(self):
        for n in (3, 5, 12):
            assert is_ring(Graph.ring(n))

    def test_ring_plus_chord_rejected(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        assert not is_ring(graph)

    def test_two_disjoint_triangles_rejected(self):
        graph = Graph.from_edges(
            6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        )
        assert not is_ring(graph)  # degree-2 everywhere but disconnected

    def test_path_rejected(self):
        assert not is_ring(Graph.from_edges(3, [(0, 1), (1, 2)]))


class TestChainAndEarDecomposition:
    def test_cycle_decomposes_into_one_ear(self):
        graph = Graph.ring(6)
        ears = ear_decomposition(graph)
        assert len(ears) == 1
        verify_ear_decomposition(graph, ears)

    def test_theta_graph(self):
        # cycle 0-1-2-3-0 plus chord path 0-4-2: two ears
        graph = Graph.from_edges(
            5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 2)]
        )
        ears = ear_decomposition(graph)
        verify_ear_decomposition(graph, ears)
        assert len(ears) == 2

    def test_complete_graphs(self):
        for n in (3, 4, 5, 6):
            edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
            graph = Graph.from_edges(n, edges)
            verify_ear_decomposition(graph, ear_decomposition(graph))

    def test_not_two_edge_connected_rejected(self):
        with pytest.raises(ConfigurationError):
            ear_decomposition(Graph.from_edges(3, [(0, 1), (1, 2)]))

    def test_random_two_edge_connected_graphs(self):
        rng = random.Random(3)
        verified = 0
        for trial in range(150):
            n = rng.randint(3, 12)
            m = rng.randint(n, min(n * (n - 1) // 2, 3 * n))
            nx_graph = nx.gnm_random_graph(n, m, seed=trial + 500)
            if not nx.is_connected(nx_graph) or list(nx.bridges(nx_graph)):
                continue
            graph = Graph.from_edges(n, list(nx_graph.edges()))
            verify_ear_decomposition(graph, ear_decomposition(graph))
            verified += 1
        assert verified > 30

    def test_verifier_rejects_corrupt_decompositions(self):
        graph = Graph.ring(5)
        good = ear_decomposition(graph)
        with pytest.raises(AssertionError):
            verify_ear_decomposition(graph, [])
        with pytest.raises(AssertionError):
            verify_ear_decomposition(graph, [good[0][:-1]])  # not a cycle

    def test_chain_decomposition_covers_cycle_edges(self):
        graph = Graph.ring(4)
        chains = chain_decomposition(graph)
        covered = {
            tuple(sorted((a, b)))
            for chain in chains
            for a, b in zip(chain, chain[1:])
        }
        assert covered == set(graph.edges)


class TestPaperConnection:
    """Rings sit exactly on the computability frontier of [8]."""

    def test_rings_are_minimally_two_edge_connected(self):
        # Removing any single edge from a ring leaves a bridge-full path:
        # rings are the *simplest* 2-edge-connected graphs.
        graph = Graph.ring(6)
        for edge in graph.edges:
            reduced = Graph.from_edges(6, [e for e in graph.edges if e != edge])
            assert not is_two_edge_connected(reduced)

    @given(st.integers(min_value=3, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_every_ring_size_passes_the_frontier_test(self, n):
        graph = Graph.ring(n)
        assert is_ring(graph)
        assert is_two_edge_connected(graph)
        assert find_bridges(graph) == set()


class TestMultiGraphEdgeCases:
    """Totality regressions: multigraphs, self-loops, disconnection.

    The original bridge finder assumed connected simple graphs; these
    pin the extended contract — parallel edges are never bridges,
    self-loops are never bridges and perturb nothing, disconnected
    inputs yield per-component verdicts instead of exceptions.
    """

    def test_parallel_edges_are_not_bridges(self):
        # K2 as a simple graph is one bridge; doubled it is 2EC.
        single = MultiGraph.from_edges(2, [(0, 1)])
        doubled = MultiGraph.from_edges(2, [(0, 1), (0, 1)])
        assert find_bridges(single) == {(0, 1)}
        assert find_bridges(doubled) == set()
        assert is_two_edge_connected(doubled)

    def test_two_node_ring_is_two_edge_connected(self):
        # The simulator's 2-ring *is* the doubled-edge multigraph.
        assert is_two_edge_connected(MultiGraph.ring(2))
        assert is_two_edge_connected(MultiGraph.ring(1))

    def test_parallel_copy_protects_a_path_edge(self):
        # Path 0-1-2 with the 1-2 edge doubled: only 0-1 is a bridge.
        graph = MultiGraph.from_edges(3, [(0, 1), (1, 2), (1, 2)])
        assert find_bridges(graph) == {(0, 1)}

    def test_self_loops_are_never_bridges(self):
        looped = MultiGraph.from_edges(3, [(0, 1), (1, 2), (1, 1)])
        assert find_bridges(looped) == {(0, 1), (1, 2)}
        ring_plus_loop = MultiGraph.from_edges(
            3, [(0, 1), (1, 2), (2, 0), (0, 0)]
        )
        assert find_bridges(ring_plus_loop) == set()
        assert is_two_edge_connected(ring_plus_loop)

    def test_disconnected_inputs_are_total(self):
        # Two components: a triangle and a path; only the path edge is
        # a bridge, and no exception is raised.
        graph = MultiGraph.from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4)])
        assert not is_connected(graph)
        assert find_bridges(graph) == {(3, 4)}
        assert not is_two_edge_connected(graph)

    def test_disconnected_simple_graph_total(self):
        graph = Graph.from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        assert not is_connected(graph)
        assert find_bridges(graph) == set()  # both components bridge-free
        assert not is_two_edge_connected(graph)  # but not connected

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_multigraph_bridges_match_networkx(self, data):
        """Differential oracle: collapse parallel edges and self-loops
        the way networkx's bridge finder expects, and compare."""
        n = data.draw(st.integers(min_value=2, max_value=8))
        edge_count = data.draw(st.integers(min_value=1, max_value=14))
        edges = [
            (
                data.draw(st.integers(min_value=0, max_value=n - 1)),
                data.draw(st.integers(min_value=0, max_value=n - 1)),
            )
            for _ in range(edge_count)
        ]
        graph = MultiGraph.from_edges(n, edges)
        oracle = nx.MultiGraph()
        oracle.add_nodes_from(range(n))
        oracle.add_edges_from(edges)
        expected = {
            tuple(sorted(edge)) for edge in nx.bridges(oracle)
        }
        assert find_bridges(graph) == expected


class TestRequireTwoEdgeConnected:
    def test_accepts_two_edge_connected(self):
        require_two_edge_connected(Graph.ring(5))  # no raise
        require_two_edge_connected(MultiGraph.ring(2))

    def test_bridge_witness_is_the_smallest_bridge(self):
        # Path 0-1-2: bridges {(0,1), (1,2)}; witness must be (0, 1).
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(BridgeWitnessError) as excinfo:
            require_two_edge_connected(graph)
        assert excinfo.value.bridge == (0, 1)
        assert "impossibility witness" in str(excinfo.value)

    def test_disconnected_witness_is_none(self):
        graph = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(BridgeWitnessError) as excinfo:
            require_two_edge_connected(graph)
        assert excinfo.value.bridge is None

    def test_witness_error_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            require_two_edge_connected(Graph.from_edges(2, [(0, 1)]))
