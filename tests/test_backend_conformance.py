"""Backend-conformance matrix: every backend is the same kernel.

One transition kernel per algorithm (:mod:`repro.core.kernels`) is the
single source of truth; the event-driven engine, its batched fast path,
the fleet (both lowerings), and the synchronous round engine are thin
adapters.  These tests pin that claim observably: for each algorithm and
orientation, every backend must produce *identical terminal schema
fingerprints* (:meth:`repro.core.schema.StateSchema.state_fingerprint`)
and the paper's *exact* pulse count (the kernel's ``pulse_bound``).

The fleet rows are reconstructed into per-node dicts and fingerprinted
through the very same schema — no backend gets its own comparison
logic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.common import LeaderState
from repro.core.kernels import nonoriented as nonoriented_kernel
from repro.core.kernels import terminating as terminating_kernel
from repro.core.kernels import warmup as warmup_kernel
from repro.core.nonoriented import IdScheme, run_nonoriented
from repro.core.terminating import run_terminating
from repro.core.warmup import run_warmup
from repro.accel import jit_available
from repro.simulator.fleet import (
    HAVE_NUMPY,
    run_nonoriented_fleet,
    run_terminating_fleet,
    run_warmup_fleet,
)
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.synchronous import KernelSyncNode, SyncEngine

from strategies import flipped_rings, unique_id_lists

# The compiled tier joins the matrix only when numba imports; without it
# the tier's rows skip cleanly rather than fail (the interpreted loop
# bodies are covered by tests/test_compiled_kernels.py regardless).
FLEET_BACKENDS = (
    ["python"]
    + (["numpy"] if HAVE_NUMPY else [])
    + (["compiled"] if jit_available() else [])
)
SCHEDULERS = ["lockstep", "seeded"]

INSTANCES = [
    [2, 1],
    [5, 9, 2, 7],
    [3, 1, 4, 2, 9, 6],
    [1, 2, 3, 4, 5],
    [7, 6, 5, 4, 3, 2],
]


# -- per-backend runners: each returns (fingerprints, total_pulses) ---------


def _terminating_engine(ids, batched):
    outcome = run_terminating(ids, batched=batched)
    prints = [
        terminating_kernel.SCHEMA.state_fingerprint(node)
        for node in outcome.nodes
    ]
    return prints, outcome.total_pulses


def _terminating_fleet(ids, backend, scheduler):
    result = run_terminating_fleet([ids], backend=backend, scheduler=scheduler)
    prints = [
        terminating_kernel.SCHEMA.fleet_fingerprint(
            {
                "node_id": ids[v],
                "strict_lag": True,
                "rho_cw": result.rho_cw[0][v],
                "sigma_cw": result.sigma_cw[0][v],
                "rho_ccw": result.rho_ccw[0][v],
                "sigma_ccw": result.sigma_ccw[0][v],
                "state": result.states[0][v],
                "term_pulse_sent": result.term_pulse_sent[0][v],
            }
        )
        for v in range(len(ids))
    ]
    return prints, result.total_pulses[0]


def _terminating_sync(ids):
    ring = build_oriented_ring(
        [KernelSyncNode(terminating_kernel, node_id) for node_id in ids]
    )
    result = SyncEngine(ring.network).run()
    assert result.all_terminated
    prints = [
        terminating_kernel.SCHEMA.state_fingerprint(node.state)
        for node in ring.network.nodes
    ]
    return prints, result.total_sent


def _warmup_engine(ids, batched):
    outcome = run_warmup(ids, batched=batched)
    prints = [
        warmup_kernel.SCHEMA.state_fingerprint(node) for node in outcome.nodes
    ]
    return prints, outcome.total_pulses


def _warmup_fleet(ids, backend, scheduler):
    result = run_warmup_fleet([ids], backend=backend, scheduler=scheduler)
    prints = [
        warmup_kernel.SCHEMA.fleet_fingerprint(
            {
                "node_id": ids[v],
                "rho_cw": result.rho_cw[0][v],
                "sigma_cw": result.sigma_cw[0][v],
                "rho_ccw": 0,
                "sigma_ccw": 0,
                "state": result.states[0][v],
            }
        )
        for v in range(len(ids))
    ]
    return prints, result.total_pulses[0]


def _warmup_sync(ids):
    ring = build_oriented_ring(
        [KernelSyncNode(warmup_kernel, node_id) for node_id in ids]
    )
    result = SyncEngine(ring.network, stop_when_quiescent=True).run()
    prints = [
        warmup_kernel.SCHEMA.state_fingerprint(node.state)
        for node in ring.network.nodes
    ]
    return prints, result.total_sent


def _nonoriented_engine(ids, flips, scheme, batched):
    outcome = run_nonoriented(ids, flips=flips, scheme=scheme, batched=batched)
    prints = [
        nonoriented_kernel.SCHEMA.state_fingerprint(node)
        for node in outcome.nodes
    ]
    return prints, outcome.run.total_sent


def _nonoriented_sync(ids, flips, scheme):
    ring = build_nonoriented_ring(
        [
            KernelSyncNode(nonoriented_kernel, node_id, scheme=scheme)
            for node_id in ids
        ],
        flips=flips,
    )
    result = SyncEngine(ring.network, stop_when_quiescent=True).run()
    prints = [
        nonoriented_kernel.SCHEMA.state_fingerprint(node.state)
        for node in ring.network.nodes
    ]
    return prints, result.total_sent


# -- the matrix --------------------------------------------------------------


@pytest.mark.parametrize("ids", INSTANCES, ids=str)
def test_terminating_all_backends_agree(ids):
    reference, total = _terminating_engine(ids, batched=False)
    assert total == terminating_kernel.pulse_bound(ids)

    observed = {"engine-batched": _terminating_engine(ids, batched=True)}
    for backend in FLEET_BACKENDS:
        for scheduler in SCHEDULERS:
            observed[f"fleet-{backend}-{scheduler}"] = _terminating_fleet(
                ids, backend, scheduler
            )
    observed["synchronous"] = _terminating_sync(ids)

    for label, (prints, sent) in observed.items():
        assert prints == reference, f"{label}: fingerprints diverge"
        assert sent == total, f"{label}: pulse count diverges"


@pytest.mark.parametrize("ids", INSTANCES, ids=str)
def test_warmup_all_backends_agree(ids):
    reference, total = _warmup_engine(ids, batched=False)
    assert total == warmup_kernel.pulse_bound(ids)

    observed = {"engine-batched": _warmup_engine(ids, batched=True)}
    for backend in FLEET_BACKENDS:
        for scheduler in SCHEDULERS:
            observed[f"fleet-{backend}-{scheduler}"] = _warmup_fleet(
                ids, backend, scheduler
            )
    observed["synchronous"] = _warmup_sync(ids)

    for label, (prints, sent) in observed.items():
        assert prints == reference, f"{label}: fingerprints diverge"
        assert sent == total, f"{label}: pulse count diverges"


@pytest.mark.parametrize("scheme", [IdScheme.SUCCESSOR, IdScheme.DOUBLED])
@pytest.mark.parametrize(
    "ids,flips",
    [
        ([2, 1], [False, True]),
        ([5, 9, 2, 7], [True, False, True, False]),
        ([3, 1, 4, 2], [False, False, False, False]),
        ([4, 3, 2, 1], [True, True, True, True]),
    ],
    ids=str,
)
def test_nonoriented_all_backends_agree(ids, flips, scheme):
    reference, total = _nonoriented_engine(ids, flips, scheme, batched=False)
    assert total == nonoriented_kernel.pulse_bound(ids, scheme)

    batched, batched_total = _nonoriented_engine(ids, flips, scheme, batched=True)
    assert batched == reference
    assert batched_total == total

    sync, sync_total = _nonoriented_sync(ids, flips, scheme)
    assert sync == reference
    assert sync_total == total

    # The fleet lowers Algorithm 3 to two directional warm-up kernels, so
    # it exposes outcome rows rather than per-port counters; compare every
    # schedule-invariant observable it reports.
    for backend in FLEET_BACKENDS:
        for scheduler in SCHEDULERS:
            result = run_nonoriented_fleet(
                [ids],
                flip_lists=[flips],
                scheme=scheme,
                backend=backend,
                scheduler=scheduler,
            )
            label = f"fleet-{backend}-{scheduler}"
            assert result.states[0] == [
                print_[-2] for print_ in reference
            ], f"{label}: states diverge"
            assert result.cw_port_labels[0] == [
                print_[-1] for print_ in reference
            ], f"{label}: port labels diverge"
            assert result.total_pulses[0] == total, f"{label}: pulses diverge"


@settings(max_examples=25, deadline=None)
@given(ids=unique_id_lists(min_size=2, max_size=6, max_id=14))
def test_terminating_conformance_hypothesis(ids):
    reference, total = _terminating_engine(ids, batched=False)
    assert total == terminating_kernel.pulse_bound(ids)
    for backend in FLEET_BACKENDS:
        assert _terminating_fleet(ids, backend, "lockstep") == (
            reference,
            total,
        )
    assert _terminating_sync(ids) == (reference, total)


@settings(max_examples=25, deadline=None)
@given(ring=flipped_rings(min_size=2, max_size=5, max_id=10))
def test_nonoriented_sync_conformance_hypothesis(ring):
    ids, flips = ring
    reference, total = _nonoriented_engine(
        ids, flips, IdScheme.SUCCESSOR, batched=False
    )
    assert _nonoriented_sync(ids, flips, IdScheme.SUCCESSOR) == (
        reference,
        total,
    )


def test_terminating_sync_outputs_are_leader_states():
    ids = [5, 9, 2, 7]
    ring = build_oriented_ring(
        [KernelSyncNode(terminating_kernel, node_id) for node_id in ids]
    )
    result = SyncEngine(ring.network).run()
    assert [out is LeaderState.LEADER for out in result.outputs] == [
        node_id == max(ids) for node_id in ids
    ]
