"""E8 — exhaustive ∀-schedule certification of small instances.

The sampled-scheduler benches (E1/E2) check the paper's claims along
many executions; this bench *exhausts* the schedule nondeterminism of
small rings with the bounded model checker and certifies:

* confluence — every schedule funnels into one terminal state (the
  mechanism behind the exact, schedule-invariant complexity formulas);
* zero quiescent-termination violations anywhere in the state space;
* the single terminal state elects the maximal ID.

The reported state/transition counts quantify how much nondeterminism
was covered, and the A1 row shows the checker autonomously finding the
ablated algorithm's bad schedules.
"""

from __future__ import annotations

from repro.core.common import LeaderState
from repro.core.nonoriented import IdScheme, NonOrientedNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.verification import explore_all_schedules


def test_exhaustive_certificates(report, benchmark):
    rows = []
    cases = [
        ("alg1", WarmupNode, [2, 3, 1]),
        ("alg1", WarmupNode, [1, 4, 2, 3]),
        ("alg2", TerminatingNode, [1, 2]),
        ("alg2", TerminatingNode, [2, 3, 1]),
        ("alg2", TerminatingNode, [3, 1, 2]),
        ("alg2", TerminatingNode, [1, 2, 3, 4]),
    ]
    for label, node_cls, ids in cases:
        def factory(node_cls=node_cls, ids=ids):
            return build_oriented_ring([node_cls(i) for i in ids]).network

        result = explore_all_schedules(factory)
        rows.append(
            (
                label,
                str(ids),
                result.states_explored,
                result.transitions,
                len(result.terminal_fingerprints),
                result.quiescence_violations,
                "yes" if result.confluent else "NO",
            )
        )
        assert result.confluent
        assert result.quiescence_violations == 0
    report.line("E8: bounded model checking — every schedule of each instance")
    report.table(
        ["algorithm", "ids", "states", "transitions", "terminals", "violations", "confluent"],
        rows,
    )
    benchmark.pedantic(
        lambda: explore_all_schedules(
            lambda: build_oriented_ring([TerminatingNode(i) for i in [2, 3, 1]]).network
        ),
        rounds=3,
        iterations=1,
    )


def test_exhaustive_nonoriented(report, benchmark):
    rows = []
    for flips in ([False, False], [True, False], [False, True], [True, True]):
        def factory(flips=flips):
            nodes = [NonOrientedNode(i, scheme=IdScheme.SUCCESSOR) for i in (1, 2)]
            return build_nonoriented_ring(nodes, flips=flips).network

        result = explore_all_schedules(factory)
        rows.append(
            (str(flips), result.states_explored, result.transitions,
             "yes" if result.confluent else "NO")
        )
        assert result.confluent
    report.line("E8b: Algorithm 3 on the 2-ring — all schedules x all port flips")
    report.table(["flips", "states", "transitions", "confluent"], rows)
    benchmark.pedantic(
        lambda: explore_all_schedules(
            lambda: build_nonoriented_ring(
                [NonOrientedNode(i) for i in (1, 2)], flips=[True, False]
            ).network
        ),
        rounds=3,
        iterations=1,
    )


def test_model_checker_finds_a1_bug_automatically(report, benchmark):
    """The ablated algorithm's bad schedules, found with zero hand-tuning."""

    def ablated_factory():
        return build_oriented_ring(
            [TerminatingNode(i, strict_lag=False) for i in (1, 2)]
        ).network

    result = explore_all_schedules(ablated_factory)
    bad_terminals = [
        outputs
        for outputs in result.terminal_outputs
        if outputs.count(LeaderState.LEADER) != 1
    ]
    assert (not result.confluent) or result.quiescence_violations or bad_terminals
    report.line(
        "E8c: the checker exhaustively finds the A1 ablation's failures — "
        f"{len(result.terminal_fingerprints)} distinct terminal states, "
        f"{result.quiescence_violations} violating transitions, "
        f"{len(bad_terminals)} terminals without a unique leader "
        "(the unablated instance has 1 terminal, 0, 0)"
    )
    benchmark.pedantic(
        lambda: explore_all_schedules(ablated_factory), rounds=3, iterations=1
    )
