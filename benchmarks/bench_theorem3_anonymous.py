"""E3 — Theorem 3 / Lemma 18: anonymous rings with randomness.

Regenerates the section-5 claims as measured series:

* success rate of the full pipeline (sample IDs, run Algorithm 3) vs
  ring size — must stay near 1, consistent with ``1 - O(n^-c)``;
* max-ID uniqueness rate at the sampling level vs ``n`` and ``c``;
* magnitude of the maximal sampled ID vs ``n`` — the ``n^Theta(c)`` law
  as a measured bit-length series.

Heavy-tail note: ``E[IDmax]`` is infinite (complexity is polynomial only
w.h.p.), so election trials are pre-screened by sampled-ID magnitude;
the screening thresholds and skip counts are reported rather than hidden.
"""

from __future__ import annotations

import random
import statistics

from repro.core.anonymous import run_anonymous
from repro.ids.sampling import GeometricIdSampler, max_is_unique, predicted_max_bits


def presample(n: int, c: float, seed: int):
    return GeometricIdSampler(c=c).sample_many(n, random.Random(seed))


def test_pipeline_success_rate_vs_n(report, benchmark):
    c, cap, per_n = 1.5, 4000, 50
    rows = []
    for n in (4, 8, 16):
        seeds = [s for s in range(400) if max(presample(n, c, s)) <= cap][:per_n]
        wins = sum(1 for s in seeds if run_anonymous(n, c=c, seed=s).succeeded)
        rows.append((n, c, len(seeds), wins, f"{wins/len(seeds):.2f}"))
        assert wins / len(seeds) > 0.6
    report.line(
        f"Theorem 3: anonymous election success rate (IDmax screened to <= {cap})"
    )
    report.table(["n", "c", "trials", "successes", "rate"], rows)
    seed = next(s for s in range(400) if max(presample(8, c, s)) <= cap)
    benchmark.pedantic(
        lambda: run_anonymous(8, c=c, seed=seed), rounds=3, iterations=1
    )


def test_lemma18_max_uniqueness_rates(report, benchmark):
    trials = 600
    rows = []
    for c in (0.5, 1.0, 2.0, 4.0):
        for n in (4, 16, 64, 256):
            wins = sum(
                1
                for s in range(trials)
                if max_is_unique(presample(n, c, s * 13 + n))
            )
            rows.append((n, c, trials, f"{wins/trials:.3f}"))
    report.line("Lemma 18: P[max sampled ID unique] (sampling only, no election)")
    report.table(["n", "c", "trials", "uniqueness rate"], rows)
    benchmark.pedantic(
        lambda: [presample(64, 2.0, s) for s in range(50)], rounds=3, iterations=1
    )


def test_lemma18_max_id_magnitude_series(report, benchmark):
    c, trials = 2.0, 120
    rows = []
    for n in (8, 32, 128, 512):
        maxima_bits = [
            max(presample(n, c, s * 101 + n)).bit_length() for s in range(trials)
        ]
        rows.append(
            (
                n,
                f"{statistics.median(maxima_bits):.0f}",
                f"{predicted_max_bits(n, c):.1f}",
                max(maxima_bits),
            )
        )
    report.line(
        "Lemma 18: bits of the max sampled ID vs n "
        "(median tracks log_{1/p}(n) => IDmax = n^Theta(c))"
    )
    report.table(["n", "median bits", "predicted bits", "worst bits"], rows)
    benchmark.pedantic(
        lambda: [presample(128, c, s) for s in range(30)], rounds=3, iterations=1
    )


def test_prop19_distinctness_rate(report, benchmark):
    from repro.core.anonymous import run_prop19

    c = 3.0
    usable = []
    for seed in range(600):
        ids = presample(5, c, seed)
        if 2000 <= max(ids) <= 60000:
            usable.append(seed)
        if len(usable) >= 20:
            break
    wins = sum(1 for s in usable if run_prop19(5, c=c, seed=s).ids_distinct)
    report.line(
        f"Proposition 19: distinct output IDs in {wins}/{len(usable)} screened "
        f"runs (n=5, c={c}, IDmax in [2000, 60000])"
    )
    assert wins / len(usable) > 0.5
    benchmark.pedantic(
        lambda: run_prop19(5, c=c, seed=usable[0]), rounds=3, iterations=1
    )
