"""E7 + A1 — invariant certification cost and the lag-discipline ablation.

E7: run Algorithms 1/2 with every executable lemma checked after *every*
delivery (Lemmas 6, 12, 14, the CCW-lag invariant, trigger uniqueness)
and report that zero violations occur across adversarial schedules —
plus what the certification costs in wall-clock terms.

A1: disable Algorithm 2's CCW buffering (`strict_lag=False`) and measure
how often the algorithm then fails across schedulers — demonstrating the
paper's "subtle prioritization" is load-bearing, not stylistic.
"""

from __future__ import annotations

import random

from repro.core.common import LeaderState
from repro.core.invariants import ALGORITHM1_HOOKS, ALGORITHM2_HOOKS
from repro.core.terminating import TerminatingNode, run_terminating
from repro.core.warmup import WarmupNode
from repro.simulator.engine import Engine
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import (
    AdversarialLagScheduler,
    GlobalFifoScheduler,
    LifoScheduler,
    RandomScheduler,
)

SCHEDULERS = {
    "global_fifo": GlobalFifoScheduler,
    "lifo": LifoScheduler,
    "random": lambda: RandomScheduler(seed=3),
    "lag_ccw": AdversarialLagScheduler.lagging_ccw,
    "lag_cw": AdversarialLagScheduler.lagging_cw,
}


def test_e7_invariant_certification(report, benchmark):
    ids = random.Random(2).sample(range(1, 120), 10)
    rows = []
    for name, factory in SCHEDULERS.items():
        for label, node_cls, hooks in (
            ("algorithm1", WarmupNode, ALGORITHM1_HOOKS),
            ("algorithm2", TerminatingNode, ALGORITHM2_HOOKS),
        ):
            nodes = [node_cls(node_id) for node_id in ids]
            topology = build_oriented_ring(nodes)
            result = Engine(
                topology.network, scheduler=factory(), invariant_hooks=hooks
            ).run()
            rows.append((label, name, result.steps, "0 (certified)"))
    report.line(
        "E7: executable Lemmas 6/12/14 + lag/trigger invariants checked "
        "after every delivery"
    )
    report.table(["algorithm", "scheduler", "deliveries checked", "violations"], rows)

    def certified_run():
        nodes = [TerminatingNode(node_id) for node_id in ids]
        topology = build_oriented_ring(nodes)
        return Engine(
            topology.network, invariant_hooks=ALGORITHM2_HOOKS
        ).run()

    benchmark.pedantic(certified_run, rounds=3, iterations=1)


def test_e7_certification_overhead(report, benchmark):
    """Wall-clock price of per-delivery lemma checking."""
    import time

    ids = random.Random(4).sample(range(1, 200), 12)

    def run(hooks):
        nodes = [TerminatingNode(node_id) for node_id in ids]
        topology = build_oriented_ring(nodes)
        start = time.perf_counter()
        Engine(topology.network, invariant_hooks=hooks).run()
        return time.perf_counter() - start

    bare = min(run(()) for _ in range(3))
    checked = min(run(ALGORITHM2_HOOKS) for _ in range(3))
    report.line(
        f"E7 overhead: bare {bare*1000:.1f} ms vs fully-certified "
        f"{checked*1000:.1f} ms ({checked/max(bare, 1e-9):.1f}x)"
    )
    benchmark.pedantic(lambda: run(ALGORITHM2_HOOKS), rounds=3, iterations=1)


def test_a1_lag_discipline_ablation(report, benchmark):
    """Failure census of Algorithm 2 with the CCW buffering removed."""
    rng = random.Random(0)
    workloads = [rng.sample(range(1, 60), rng.randint(2, 10)) for _ in range(20)]
    rows = []
    for name, factory in SCHEDULERS.items():
        broken = 0
        for ids in workloads:
            outcome = run_terminating(ids, scheduler=factory(), strict_lag=False)
            ok = (
                outcome.leaders == [outcome.expected_leader]
                and not outcome.run.quiescence_violations
                and outcome.total_pulses == outcome.theorem1_message_bound
                and LeaderState.UNDECIDED not in outcome.outputs
            )
            broken += 0 if ok else 1
        rows.append(("ablated (strict_lag=False)", name, f"{broken}/{len(workloads)}"))
    for name, factory in SCHEDULERS.items():
        broken = 0
        for ids in workloads:
            outcome = run_terminating(ids, scheduler=factory(), strict_lag=True)
            if outcome.leaders != [outcome.expected_leader]:
                broken += 1
        rows.append(("paper's algorithm", name, f"{broken}/{len(workloads)}"))
        assert broken == 0
    ablated_failures = sum(
        int(row[2].split("/")[0]) for row in rows if row[0].startswith("ablated")
    )
    assert ablated_failures > 0, "ablation never failed — discipline not exercised?"
    report.line(
        "A1: removing the CCW-lag buffering breaks Theorem 1 under "
        "adversarial schedules; the unmodified algorithm never fails"
    )
    report.table(["variant", "scheduler", "broken runs"], rows)
    benchmark.pedantic(
        lambda: run_terminating(
            workloads[0],
            scheduler=AdversarialLagScheduler.lagging_cw(),
            strict_lag=False,
        ),
        rounds=3,
        iterations=1,
    )
