"""E6 — Corollary 5: arbitrary computation with no pre-existing root.

The paper's punchline experiment: compose Theorem 1's election with the
root-based content-oblivious transport and compute global functions over
a fully defective ring that starts perfectly symmetric (no root).  The
tables report end-to-end pulse costs and their exact decomposition into
election (``n(2*IDmax+1)``) plus transport (unary-rate) shares.
"""

from __future__ import annotations

import random

from repro.core.composition import run_composed
from repro.defective.simulation import AllReduceProgram, GatherProgram, SizeProgram
from repro.defective.transport import transport_pulse_cost


def ring(n: int, seed: int = 11):
    rng = random.Random(seed)
    ids = rng.sample(range(1, 4 * n + 1), n)
    inputs = [rng.randint(0, 9) for _ in range(n)]
    return ids, inputs


def decompose(outcome):
    election = len(outcome.ids) * (2 * max(outcome.ids) + 1)
    schedule = [v for node in outcome.nodes for v in node.compute.values_sent]
    transport = transport_pulse_cost(len(outcome.ids), schedule)
    return election, transport


def test_e2e_sum_scaling(report, benchmark):
    rows = []
    for n in (2, 4, 8, 16, 32):
        ids, inputs = ring(n)
        outcome = run_composed(ids, inputs, AllReduceProgram(lambda a, b: a + b))
        election, transport = decompose(outcome)
        assert outcome.outputs == [sum(inputs)] * n
        assert outcome.total_pulses == election + transport
        assert outcome.run.quiescently_terminated
        rows.append((n, max(ids), sum(inputs), election, transport, outcome.total_pulses))
    report.line("Corollary 5: elect-then-sum on a rootless fully defective ring")
    report.table(
        ["n", "IDmax", "sum", "election pulses", "transport pulses", "total"],
        rows,
    )
    ids, inputs = ring(16)
    benchmark.pedantic(
        lambda: run_composed(ids, inputs, AllReduceProgram(lambda a, b: a + b)),
        rounds=3,
        iterations=1,
    )


def test_e2e_program_zoo(report, benchmark):
    ids, inputs = ring(8, seed=5)
    rows = []
    for label, program, expected in (
        ("sum", AllReduceProgram(lambda a, b: a + b), sum(inputs)),
        ("max", AllReduceProgram(max), max(inputs)),
        ("size", SizeProgram(), len(inputs)),
    ):
        outcome = run_composed(ids, inputs, program)
        assert outcome.outputs == [expected] * len(ids)
        rows.append((label, str(expected), outcome.total_pulses))
    report.line(f"Corollary 5 program zoo (n=8, ids={ids}, inputs={inputs})")
    report.table(["program", "result (all nodes)", "total pulses"], rows)
    benchmark.pedantic(
        lambda: run_composed(ids, inputs, SizeProgram()), rounds=3, iterations=1
    )


def test_e2e_gather_small_payloads(report, benchmark):
    # Gather is computation-universal but pays the unary/gamma encoding
    # rate; keep payloads tiny and report the cost honestly.
    ids = [9, 3, 7]
    inputs = [2, 0, 3]
    outcome = run_composed(ids, inputs, GatherProgram())
    leader = outcome.leader
    expected = [inputs[(leader + k) % 3] for k in range(3)]
    assert outcome.outputs == [expected] * 3
    report.line(
        f"Corollary 5 gather: every node learned {expected} "
        f"(CW from leader) at {outcome.total_pulses} pulses — the unary "
        "encoding rate in action"
    )
    benchmark.pedantic(
        lambda: run_composed(ids, inputs, GatherProgram()), rounds=3, iterations=1
    )


def test_transport_unary_rate(report, benchmark):
    """Transport cost grows linearly in the transmitted magnitude."""
    from repro.defective.simulation import run_defective_computation

    n = 6
    rows = []
    for magnitude in (1, 8, 64, 512):
        inputs = [magnitude] * n
        outcome = run_defective_computation(inputs, "max", leader=0)
        rows.append((n, magnitude, outcome.total_pulses))
        assert outcome.outputs == [magnitude] * n
    report.line("Transport unary rate: pulses vs payload magnitude (max of equal inputs)")
    report.table(["n", "payload", "pulses"], rows)
    benchmark.pedantic(
        lambda: run_defective_computation([64] * n, "max"), rounds=3, iterations=1
    )
