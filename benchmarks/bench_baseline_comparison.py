"""E5 — the price of content-obliviousness vs classic baselines.

The introduction situates the paper's ``Theta(n * IDmax)`` cost against
content-carrying elections (``O(n log n)`` / ``O(n^2)``).  This bench
measures all six algorithms on identical rings and locates the
crossover: with a tight ID space (``IDmax ~ n``) the content-oblivious
algorithm is competitive; as IDs grow it falls behind by exactly the
factor Theorem 4 proves unavoidable.
"""

from __future__ import annotations

import random

from repro.analysis.complexity import algorithm2_pulses, crossover_id_max
from repro.baselines import ALL_BASELINES, run_baseline
from repro.core.terminating import run_terminating


def measure_all(ids):
    """Message counts of Algorithm 2 plus every baseline, same ring."""
    counts = {"content_oblivious": run_terminating(ids).total_pulses}
    for name, cls in ALL_BASELINES.items():
        counts[name] = run_baseline(cls, ids).total_messages
    return counts


def test_comparison_table_tight_ids(report, benchmark):
    """IDmax == n: the content-oblivious cost is ~2n^2, near Le Lann."""
    rows = []
    for n in (4, 8, 16, 32, 64):
        ids = list(range(1, n + 1))
        random.Random(n).shuffle(ids)
        counts = measure_all(ids)
        rows.append(
            (
                n,
                counts["content_oblivious"],
                counts["chang_roberts"],
                counts["lelann"],
                counts["hirschberg_sinclair"],
                counts["peterson"],
                counts["dolev_klawe_rodeh"],
                counts["franklin"],
            )
        )
        assert counts["content_oblivious"] == n * (2 * n + 1)
    report.line("E5a: tight ID space (IDmax = n): messages per algorithm")
    report.table(
        ["n", "oblivious", "chang-roberts", "lelann", "hs", "peterson", "dkr", "franklin"],
        rows,
    )
    ids = list(range(1, 33))
    benchmark.pedantic(lambda: measure_all(ids), rounds=3, iterations=1)


def test_comparison_table_sparse_ids(report, benchmark):
    """IDmax >> n: content costs stay flat, oblivious cost grows linearly."""
    n = 16
    rows = []
    for spread in (16, 64, 256, 1024, 4096):
        ids = random.Random(spread).sample(range(1, spread + 1), n)
        counts = measure_all(ids)
        cheapest = min(
            (name for name in ALL_BASELINES), key=lambda name: counts[name]
        )
        rows.append(
            (
                n,
                max(ids),
                counts["content_oblivious"],
                cheapest,
                counts[cheapest],
                f"{counts['content_oblivious']/counts[cheapest]:.1f}x",
            )
        )
    report.line("E5b: sparse IDs at n=16: the oblivious overhead grows with IDmax")
    report.table(
        ["n", "IDmax", "oblivious", "cheapest baseline", "its msgs", "overhead"],
        rows,
    )
    ids = random.Random(1024).sample(range(1, 1025), n)
    benchmark.pedantic(lambda: measure_all(ids), rounds=3, iterations=1)


def test_crossover_location(report, benchmark):
    """Where obliviousness stops being competitive with each baseline."""
    n = 16
    ids_dense = list(range(1, n + 1))
    rows = []
    for name, cls in ALL_BASELINES.items():
        baseline_cost = run_baseline(cls, ids_dense).total_messages
        crossover = crossover_id_max(n, baseline_cost)
        rows.append(
            (
                name,
                baseline_cost,
                crossover,
                algorithm2_pulses(n, crossover),
            )
        )
        assert algorithm2_pulses(n, crossover) > baseline_cost
    report.line(
        f"E5c: smallest IDmax (n={n}) where Algorithm 2 exceeds each "
        "baseline's dense-ring cost"
    )
    report.table(
        ["baseline", "its msgs (IDmax=n)", "crossover IDmax", "oblivious cost there"],
        rows,
    )
    benchmark.pedantic(
        lambda: [crossover_id_max(16, m) for m in (100, 1000, 10000)],
        rounds=5,
        iterations=10,
    )


def test_worst_case_shapes(report, benchmark):
    """Chang-Roberts' Theta(n^2) worst case vs the oblivious cost's shape-independence."""
    n = 32
    descending = list(range(n, 0, -1))
    ascending = list(range(1, n + 1))
    rows = []
    for label, ids in (("descending CW", descending), ("ascending CW", ascending)):
        counts = measure_all(ids)
        rows.append(
            (label, counts["content_oblivious"], counts["chang_roberts"], counts["lelann"])
        )
    # Placement changes Chang-Roberts dramatically, the oblivious cost not at all.
    assert rows[0][1] == rows[1][1]
    assert rows[0][2] > 3 * rows[1][2]
    report.line("E5d: ID placement sensitivity (n=32, IDmax=32)")
    report.table(["placement", "oblivious", "chang-roberts", "lelann"], rows)
    benchmark.pedantic(
        lambda: run_baseline(ALL_BASELINES["chang_roberts"], descending),
        rounds=3,
        iterations=1,
    )
