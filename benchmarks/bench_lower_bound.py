"""E4 — Theorem 4 / Theorem 20: the message-complexity lower bound.

Regenerates Section 6 end to end, executable:

* solitude patterns (Definition 21) of Algorithm 2 across an ID universe
  — all distinct, as Lemma 22 demands of any correct algorithm;
* Corollary 24's pigeonhole: the n-subset sharing a long common prefix,
  i.e. the adversarial ID assignment of Theorem 20's proof;
* the bound curve ``n*floor(log2(IDmax/n))`` against Theorem 1's
  measured (and exactly predicted) upper bound — the exponential gap the
  paper's conclusion leaves open.
"""

from __future__ import annotations

from repro.core.lower_bound import (
    find_common_prefix_group,
    find_pattern_collision,
    lower_bound_pulses,
    solitude_patterns,
    theorem1_upper_bound,
)
from repro.core.terminating import TerminatingNode, run_terminating


def factory(node_id: int) -> TerminatingNode:
    return TerminatingNode(node_id)


def test_lemma22_pattern_uniqueness(report, benchmark):
    universe = range(1, 129)
    patterns = solitude_patterns(factory, universe)
    collision = find_pattern_collision(patterns)
    assert collision is None
    lengths = sorted({len(p) for p in patterns.values()})
    report.line(
        f"Lemma 22: {len(patterns)} solitude patterns, all distinct; "
        f"lengths 2*ID+1 in [{lengths[0]}, {lengths[-1]}]"
    )
    benchmark.pedantic(
        lambda: solitude_patterns(factory, range(1, 33)), rounds=3, iterations=1
    )


def test_theorem20_adversarial_assignment(report, benchmark):
    rows = []
    for k, n in ((32, 2), (64, 4), (128, 8), (256, 4)):
        patterns = solitude_patterns(factory, range(1, k + 1))
        group, prefix = find_common_prefix_group(patterns, n)
        outcome = run_terminating(group)
        bound = lower_bound_pulses(n, k)
        rows.append(
            (
                k,
                n,
                len(prefix),
                str(group),
                bound,
                outcome.total_pulses,
                "yes" if outcome.total_pulses >= bound else "NO",
            )
        )
        assert outcome.total_pulses >= bound
    report.line(
        "Theorem 20: pigeonhole assignment forces >= n*floor(log2(k/n)) pulses"
    )
    report.table(
        ["k (IDs)", "n", "prefix len", "chosen IDs", "lower bound", "measured", "holds"],
        rows,
    )
    benchmark.pedantic(
        lambda: find_common_prefix_group(
            solitude_patterns(factory, range(1, 65)), 4
        ),
        rounds=3,
        iterations=1,
    )


def test_bound_gap_curve(report, benchmark):
    """The open gap: upper/lower ratio grows ~ IDmax/log(IDmax)."""
    n = 4
    rows = []
    for exponent in range(3, 15, 2):
        id_max = n * (2**exponent)
        lower = lower_bound_pulses(n, id_max)
        upper = theorem1_upper_bound(n, id_max)
        rows.append((n, id_max, lower, upper, f"{upper/lower:.1f}"))
    report.line(
        "Upper (Thm 1, exact) vs lower (Thm 4) bound: the exponential gap "
        "the paper leaves open"
    )
    report.table(["n", "IDmax", "lower", "upper", "ratio"], rows)
    benchmark.pedantic(
        lambda: [lower_bound_pulses(4, 4 * 2**e) for e in range(3, 15)],
        rounds=5,
        iterations=10,
    )


def test_unbounded_messages_even_for_tiny_rings(report, benchmark):
    """Thm 20's corollary: even n=1 costs grow without bound in the ID space."""
    rows = []
    for node_id in (1, 10, 100, 1000, 10000):
        outcome = run_terminating([node_id])
        rows.append((node_id, lower_bound_pulses(1, node_id), outcome.total_pulses))
        assert outcome.total_pulses == 2 * node_id + 1
    report.line("n = 1: pulses grow without bound as the assignable ID grows")
    report.table(["ID", "lower bound", "measured (=2*ID+1)"], rows)
    benchmark.pedantic(lambda: run_terminating([10000]), rounds=3, iterations=1)
