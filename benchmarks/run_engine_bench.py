"""Engine throughput benchmark: batched vs pulse-by-pulse delivery.

Measures simulator throughput (pulses/second) on the Theorem 1 workload
— ``run_terminating`` costs exactly ``n(2*IDmax + 1)`` pulses — over the
grid ``n in {8, 32, 128} x IDmax in {10^3, 10^5}``, once per engine mode:

* ``unbatched`` — the reference per-pulse loop, default global-FIFO
  adversary;
* ``batched`` — the counting fast path under the same adversary;
* ``batched_longest_run`` — the fast path under the run-snowballing
  :class:`~repro.simulator.scheduler.LongestRunScheduler` (any scheduler
  is a legal adversary and the pulse count is schedule-invariant, so
  throughput is comparable across rows).

Each config cross-checks the modes' outcomes (leader, exact pulse count)
and the script additionally fans a randomized differential sweep over
:func:`repro.analysis.parallel.parallel_map`.  Results land in a
machine-readable ``BENCH_engine.json`` at the repo root so future PRs
have a perf trajectory::

    PYTHONPATH=src python benchmarks/run_engine_bench.py            # full grid
    PYTHONPATH=src python benchmarks/run_engine_bench.py --quick    # small grid
    PYTHONPATH=src python benchmarks/run_engine_bench.py --processes auto
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import time
from typing import Dict, List, Optional

from repro.analysis.parallel import parallel_map, resolve_processes
from repro.core.terminating import run_terminating
from repro.exceptions import ConfigurationError
from repro.simulator.scheduler import GlobalFifoScheduler, LongestRunScheduler

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FULL_GRID = [(n, id_max) for id_max in (10**3, 10**5) for n in (8, 32, 128)]
QUICK_GRID = [(n, id_max) for id_max in (10**3, 10**4) for n in (8, 32)]


def pinned_ids(n: int, id_max: int, seed: int) -> List[int]:
    """``n`` distinct IDs with the maximum pinned to ``id_max``."""
    rng = random.Random(seed)
    ids = rng.sample(range(1, id_max), n - 1) + [id_max]
    rng.shuffle(ids)
    return ids


def _timed_run(ids: List[int], batched: bool, scheduler_factory) -> Dict:
    t0 = time.perf_counter()
    outcome = run_terminating(
        ids, scheduler=scheduler_factory(), max_steps=10**9, batched=batched
    )
    seconds = time.perf_counter() - t0
    assert outcome.total_pulses == outcome.theorem1_message_bound
    assert outcome.leaders == [outcome.expected_leader]
    assert outcome.run.quiescently_terminated
    return {
        "seconds": round(seconds, 4),
        "steps": outcome.run.steps,
        "pulses": outcome.total_pulses,
        "pulses_per_sec": round(outcome.total_pulses / seconds),
        "leader_id": outcome.ids[outcome.leaders[0]],
    }


def bench_config(n: int, id_max: int) -> Dict:
    ids = pinned_ids(n, id_max, seed=1000 * n + id_max)
    unbatched = _timed_run(ids, batched=False, scheduler_factory=GlobalFifoScheduler)
    batched = _timed_run(ids, batched=True, scheduler_factory=GlobalFifoScheduler)
    snowball = _timed_run(ids, batched=True, scheduler_factory=LongestRunScheduler)
    for row in (batched, snowball):
        row["speedup"] = round(unbatched["seconds"] / row["seconds"], 2)
    outcomes_match = (
        unbatched["leader_id"] == batched["leader_id"] == snowball["leader_id"]
        and unbatched["pulses"] == batched["pulses"] == snowball["pulses"]
    )
    return {
        "n": n,
        "id_max": id_max,
        "claimed_pulses": n * (2 * id_max + 1),
        "unbatched": unbatched,
        "batched": batched,
        "batched_longest_run": snowball,
        "outcomes_match": outcomes_match,
    }


def _differential_case(case_seed: int) -> bool:
    """Picklable worker: one small batched-vs-unbatched comparison."""
    rng = random.Random(case_seed)
    n = rng.randint(2, 8)
    ids = rng.sample(range(1, 200), n)
    slow = run_terminating(ids)
    fast = run_terminating(ids, batched=True)
    return (
        slow.leaders == fast.leaders
        and slow.total_pulses == fast.total_pulses == n * (2 * max(ids) + 1)
        and slow.run.termination_order == fast.run.termination_order
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid for smoke runs"
    )
    parser.add_argument(
        "--processes",
        default=None,
        help="worker processes for the differential sweep (int, 'auto', default serial)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    processes = args.processes
    if isinstance(processes, str):
        try:
            processes = int(processes)
        except ValueError:
            pass
    try:  # fail fast on a bad worker count, not after the whole grid
        resolve_processes(processes)
    except ConfigurationError as exc:
        parser.error(str(exc))

    grid = QUICK_GRID if args.quick else FULL_GRID
    configs = []
    for n, id_max in grid:
        print(f"benchmarking n={n} IDmax={id_max} ...", flush=True)
        config = bench_config(n, id_max)
        print(
            f"  unbatched {config['unbatched']['pulses_per_sec']:>10,} pulses/s | "
            f"batched {config['batched']['pulses_per_sec']:>12,} pulses/s "
            f"({config['batched']['speedup']}x) | "
            f"longest_run {config['batched_longest_run']['speedup']}x",
            flush=True,
        )
        configs.append(config)

    sweep_cases = 40
    sweep = parallel_map(
        _differential_case, range(sweep_cases), processes=processes
    )
    top_id_max = max(id_max for _n, id_max in grid)
    top_rows = [c for c in configs if c["id_max"] == top_id_max]
    speedups = {f"n={c['n']}": c["batched"]["speedup"] for c in top_rows}
    best = max(
        max(c["batched"]["speedup"], c["batched_longest_run"]["speedup"])
        for c in top_rows
    )
    report = {
        "generated_by": "benchmarks/run_engine_bench.py"
        + (" --quick" if args.quick else ""),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": "run_terminating (Theorem 1: exactly n(2*IDmax+1) pulses)",
        "grid": configs,
        "differential_sweep": {
            "cases": sweep_cases,
            "all_match": all(sweep),
            "processes": args.processes or "serial",
        },
        "summary": {
            "top_id_max": top_id_max,
            "batched_speedup_at_top_id_max": speedups,
            "best_speedup_at_top_id_max": best,
            "meets_10x_at_top_id_max": best >= 10.0,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not all(sweep) or not all(c["outcomes_match"] for c in configs):
        print("DIFFERENTIAL MISMATCH — batched engine disagrees with reference")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
