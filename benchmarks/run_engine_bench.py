"""Engine throughput benchmark: batched vs pulse-by-pulse delivery.

Measures simulator throughput (pulses/second) on the Theorem 1 workload
— ``run_terminating`` costs exactly ``n(2*IDmax + 1)`` pulses — over the
grid ``n in {8, 32, 128} x IDmax in {10^3, 10^5}``, once per engine mode:

* ``unbatched`` — the reference per-pulse loop, default global-FIFO
  adversary;
* ``batched`` — the counting fast path under the same adversary;
* ``batched_longest_run`` — the fast path under the run-snowballing
  :class:`~repro.simulator.scheduler.LongestRunScheduler` (any scheduler
  is a legal adversary and the pulse count is schedule-invariant, so
  throughput is comparable across rows).

Each config cross-checks the modes' outcomes (leader, exact pulse count)
and the script additionally fans a randomized differential sweep over
:func:`repro.analysis.parallel.parallel_map`.

A separate *sweep* workload times the Monte Carlo shape the analysis
layer actually runs — many independent instances — through three
engines: per-instance unbatched, per-instance batched, and the
vectorized fleet (:mod:`repro.simulator.fleet`) advancing all instances
in lockstep.  The fleet runs every instance; the scalar engines are
timed on a subsample and extrapolated (their per-instance cost is the
schedule-invariant ``n(2*IDmax+1)`` pulse count, identical across
instances up to the ID draw).  Outcomes are verified by element-wise
comparison on the subsample plus closed-form checks (exact Theorem 1
pulse count, max-ID leader, all terminated) over the full fleet.

A *compiled* section times the JIT fleet tier against the numpy fleet
on the same sweep shape (``warm_compiled`` is invoked — and timed —
first, so compilation cost is reported separately from throughput).
Without numba the section records ``numba_available: false`` instead of
a number.  Thread counts (OMP/NUMBA/BLAS) are pinned at module import,
before any ``repro`` import, and echoed into the report metadata.

Results land in a machine-readable ``BENCH_engine.json`` at the repo
root so future PRs have a perf trajectory::

    PYTHONPATH=src python benchmarks/run_engine_bench.py            # full grid
    PYTHONPATH=src python benchmarks/run_engine_bench.py --quick    # small grid
    PYTHONPATH=src python benchmarks/run_engine_bench.py --processes auto
    PYTHONPATH=src python benchmarks/run_engine_bench.py --quick \\
        --min-batched-speedup 5 --min-fleet-speedup 5               # CI gate
    PYTHONPATH=src python benchmarks/run_engine_bench.py --quick \\
        --min-compiled-speedup 10                                   # JIT gate
"""

from __future__ import annotations

import os

# Pin thread counts BEFORE any repro/numpy/numba import: BLAS pools and
# the numba runtime size themselves at import, and an oversubscribed box
# turns throughput numbers into noise.  ``setdefault`` keeps an explicit
# operator override; the effective pins land in the report metadata.
THREAD_PINS = {
    "OMP_NUM_THREADS": "1",
    "NUMBA_NUM_THREADS": "1",
    "OPENBLAS_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
}
for _var, _default in THREAD_PINS.items():
    os.environ.setdefault(_var, _default)

import argparse
import json
import pathlib
import platform
import random
import time
from typing import Dict, List, Optional

from repro.analysis.parallel import parallel_map, resolve_processes
from repro.core.terminating import run_terminating
from repro.exceptions import ConfigurationError
from repro.simulator.scheduler import GlobalFifoScheduler, LongestRunScheduler

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FULL_GRID = [(n, id_max) for id_max in (10**3, 10**5) for n in (8, 32, 128)]
QUICK_GRID = [(n, id_max) for id_max in (10**3, 10**4) for n in (8, 32)]


def pinned_ids(n: int, id_max: int, seed: int) -> List[int]:
    """``n`` distinct IDs with the maximum pinned to ``id_max``."""
    rng = random.Random(seed)
    ids = rng.sample(range(1, id_max), n - 1) + [id_max]
    rng.shuffle(ids)
    return ids


def _timed_run(ids: List[int], batched: bool, scheduler_factory) -> Dict:
    t0 = time.perf_counter()
    outcome = run_terminating(
        ids, scheduler=scheduler_factory(), max_steps=10**9, batched=batched
    )
    seconds = time.perf_counter() - t0
    assert outcome.total_pulses == outcome.theorem1_message_bound
    assert outcome.leaders == [outcome.expected_leader]
    assert outcome.run.quiescently_terminated
    return {
        "seconds": round(seconds, 4),
        "steps": outcome.run.steps,
        "pulses": outcome.total_pulses,
        "pulses_per_sec": round(outcome.total_pulses / seconds),
        "leader_id": outcome.ids[outcome.leaders[0]],
    }


def bench_config(n: int, id_max: int) -> Dict:
    ids = pinned_ids(n, id_max, seed=1000 * n + id_max)
    unbatched = _timed_run(ids, batched=False, scheduler_factory=GlobalFifoScheduler)
    batched = _timed_run(ids, batched=True, scheduler_factory=GlobalFifoScheduler)
    snowball = _timed_run(ids, batched=True, scheduler_factory=LongestRunScheduler)
    for row in (batched, snowball):
        row["speedup"] = round(unbatched["seconds"] / row["seconds"], 2)
    outcomes_match = (
        unbatched["leader_id"] == batched["leader_id"] == snowball["leader_id"]
        and unbatched["pulses"] == batched["pulses"] == snowball["pulses"]
    )
    return {
        "n": n,
        "id_max": id_max,
        "claimed_pulses": n * (2 * id_max + 1),
        "unbatched": unbatched,
        "batched": batched,
        "batched_longest_run": snowball,
        "outcomes_match": outcomes_match,
    }


def bench_sweep(fleet_size: int, n: int, id_max: int, subsample: int) -> Dict:
    """Time the three engines on a ``fleet_size``-instance Monte Carlo sweep."""
    from repro.simulator.fleet import HAVE_NUMPY, run_terminating_fleet

    instances = [pinned_ids(n, id_max, seed=b) for b in range(fleet_size)]

    t0 = time.perf_counter()
    result = run_terminating_fleet(instances)
    fleet_seconds = time.perf_counter() - t0
    fleet_pulses = sum(result.total_pulses)

    # Closed-form checks over the FULL fleet: Theorem 1's exact count,
    # the max-ID leader, and termination everywhere.
    closed_form_ok = (
        all(
            total == n * (2 * max(ids) + 1)
            for total, ids in zip(result.total_pulses, instances)
        )
        and all(
            result.leaders[b] == [max(range(n), key=lambda v: instances[b][v])]
            for b in range(fleet_size)
        )
        and all(all(row) for row in result.terminated)
        and result.ignored_deliveries == 0
    )

    # Scalar engines: time a subsample, extrapolate by pulse volume (the
    # per-instance cost is schedule-invariant and near-identical across
    # the fleet, so pulses/s is the stable quantity).
    sample = instances[:subsample]
    elementwise_ok = True
    t0 = time.perf_counter()
    for b, ids in enumerate(sample):
        outcome = run_terminating(ids, batched=True, max_steps=10**9)
        elementwise_ok &= (
            outcome.leaders == result.leaders[b]
            and outcome.total_pulses == result.total_pulses[b]
        )
    batched_seconds = time.perf_counter() - t0
    batched_pulses = sum(result.total_pulses[:subsample])

    t0 = time.perf_counter()
    outcome = run_terminating(instances[0], max_steps=10**9)
    unbatched_seconds = time.perf_counter() - t0
    elementwise_ok &= (
        outcome.leaders == result.leaders[0]
        and outcome.total_pulses == result.total_pulses[0]
    )

    fleet_rate = fleet_pulses / fleet_seconds
    batched_rate = batched_pulses / batched_seconds
    unbatched_rate = outcome.total_pulses / unbatched_seconds
    return {
        "fleet_size": fleet_size,
        "n": n,
        "id_max": id_max,
        "subsample": subsample,
        "backend": result.backend,
        "numpy_available": HAVE_NUMPY,
        "fleet": {
            "seconds": round(fleet_seconds, 4),
            "pulses": fleet_pulses,
            "pulses_per_sec": round(fleet_rate),
            "rounds": result.rounds,
            "lap_skips": result.lap_skips,
        },
        "batched": {
            "sampled_seconds": round(batched_seconds, 4),
            "pulses_per_sec": round(batched_rate),
            "extrapolated_sweep_seconds": round(fleet_pulses / batched_rate, 2),
        },
        "unbatched": {
            "sampled_seconds": round(unbatched_seconds, 4),
            "pulses_per_sec": round(unbatched_rate),
            "extrapolated_sweep_seconds": round(fleet_pulses / unbatched_rate, 2),
        },
        "fleet_speedup_vs_batched": round(fleet_rate / batched_rate, 2),
        "fleet_speedup_vs_unbatched": round(fleet_rate / unbatched_rate, 2),
        "outcomes_match": bool(closed_form_ok and elementwise_ok),
    }


def bench_compiled(fleet_size: int, n: int, id_max: int) -> Dict:
    """Time the JIT tier against the NumPy fleet on the same sweep shape.

    ``warm_compiled`` runs (and is timed) first so one-off compilation
    cost is reported separately and never pollutes the throughput rows.
    Without numba the section records ``numba_available: false`` and
    skips honestly instead of faking a number.
    """
    from repro.accel import jit_available, warm_compiled
    from repro.simulator.fleet import HAVE_NUMPY, run_terminating_fleet

    section: Dict = {
        "fleet_size": fleet_size,
        "n": n,
        "id_max": id_max,
        "numba_available": jit_available(),
    }
    if not section["numba_available"] or not HAVE_NUMPY:
        section["skipped"] = (
            "numba (the [jit] extra) is not importable on this machine"
        )
        return section

    section["compile_seconds"] = round(warm_compiled(), 3)
    instances = [pinned_ids(n, id_max, seed=b) for b in range(fleet_size)]

    t0 = time.perf_counter()
    numpy_result = run_terminating_fleet(instances, backend="numpy")
    numpy_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    compiled_result = run_terminating_fleet(instances, backend="compiled")
    compiled_seconds = time.perf_counter() - t0
    assert compiled_result.backend == "compiled"

    pulses = sum(numpy_result.total_pulses)
    outcomes_match = (
        compiled_result.leaders == numpy_result.leaders
        and compiled_result.states == numpy_result.states
        and compiled_result.total_pulses == numpy_result.total_pulses
        and compiled_result.rho_cw == numpy_result.rho_cw
        and compiled_result.rho_ccw == numpy_result.rho_ccw
    )
    numpy_rate = pulses / numpy_seconds
    compiled_rate = pulses / compiled_seconds
    section.update(
        {
            "numpy": {
                "seconds": round(numpy_seconds, 4),
                "pulses_per_sec": round(numpy_rate),
            },
            "compiled": {
                "seconds": round(compiled_seconds, 4),
                "pulses_per_sec": round(compiled_rate),
            },
            "pulses": pulses,
            "compiled_speedup_vs_numpy": round(
                compiled_rate / numpy_rate, 2
            ),
            "outcomes_match": bool(outcomes_match),
        }
    )
    return section


# Slots micro-benchmark (node/channel allocation weight): run_terminating
# on n=32, IDmax=1000, pinned seed, best of 5.  The "before" row was
# measured at the commit preceding the __slots__ change with the same
# procedure; "after" is re-measured by --slots-bench (and folded into the
# full-grid report) so the delta stays honest on the recording machine.
SLOTS_BENCH_BEFORE = {
    "unbatched_pulses_per_sec": 172_317,
    "batched_pulses_per_sec": 2_839_438,
}


def bench_slots(repeats: int = 5) -> Dict:
    """Best-of-``repeats`` micro-benchmark matching SLOTS_BENCH_BEFORE."""
    n, id_max = 32, 1000
    ids = pinned_ids(n, id_max, seed=n * id_max)
    best: Dict[str, float] = {}
    for batched in (False, True):
        rates = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            outcome = run_terminating(ids, batched=batched, max_steps=10**9)
            rates.append(outcome.total_pulses / (time.perf_counter() - t0))
        key = "batched" if batched else "unbatched"
        best[f"{key}_pulses_per_sec"] = round(max(rates))
    return {
        "workload": "run_terminating n=32 IDmax=1000, best of 5",
        "before_slots": SLOTS_BENCH_BEFORE,
        "after_slots": best,
        "speedup_unbatched": round(
            best["unbatched_pulses_per_sec"]
            / SLOTS_BENCH_BEFORE["unbatched_pulses_per_sec"],
            3,
        ),
        "speedup_batched": round(
            best["batched_pulses_per_sec"]
            / SLOTS_BENCH_BEFORE["batched_pulses_per_sec"],
            3,
        ),
    }


def bench_farm(quick: bool) -> Dict:
    """Sweep-farm cache economics: cold vs warm campaign wall time.

    Submits one recovery campaign into a throwaway farm root three ways:
    *cold* (every shard computed), *warm* (every shard a cache hit —
    an immediate re-submit), and *resume* (one shard deleted, as after
    an interrupted run).  The warm collect must be byte-identical to the
    cold collect, and the cache speedup (cold / warm wall time,
    submit+collect) is the number the ``--min-cache-speedup`` gate
    checks.
    """
    import shutil
    import tempfile

    from repro.farm.campaign import Campaign, recovery_params
    from repro.farm.service import Farm
    from repro.faults.model import FaultModel

    # Heavy compute per payload byte (large n, low fault rate) so the
    # warm run measures cache reads, not JSON parsing of failure logs.
    if quick:
        total, shard_size, n, id_max = 2000, 500, 12, 128
    else:
        total, shard_size, n, id_max = 10000, 1250, 12, 128
    root = pathlib.Path(tempfile.mkdtemp(prefix="repro-farm-bench-"))
    try:
        farm = Farm(root)
        campaign = Campaign(
            "recovery",
            total=total,
            params=recovery_params(
                n=n,
                id_max=id_max,
                seed=9,
                faults=FaultModel(drop_rate=0.002, seed=9),
            ),
            shard_size=shard_size,
        )
        t0 = time.perf_counter()
        cold_outcome = farm.submit(campaign)
        cold_text = farm.collect_text(campaign.cid)
        cold_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_outcome = farm.submit(campaign)
        warm_text = farm.collect_text(campaign.cid)
        warm_seconds = time.perf_counter() - t0

        first_key = campaign.jobs()[0].key
        farm.store.delete(first_key)
        t0 = time.perf_counter()
        resume_outcome = farm.submit(campaign)
        resume_seconds = time.perf_counter() - t0

        shards = len(campaign.jobs())
        return {
            "workload": (
                f"recovery campaign n={n} id_max={id_max} total={total} "
                f"drop_rate=0.002 ({shards} shards of {shard_size})"
            ),
            "shards": shards,
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "cache_speedup": round(cold_seconds / warm_seconds, 3),
            "cold_computed": cold_outcome.computed,
            "warm_cache_hits": warm_outcome.hits,
            "warm_hit_rate": warm_outcome.hit_rate,
            "byte_identical_collect": cold_text == warm_text,
            "resume_seconds": round(resume_seconds, 4),
            "resume_recomputed": resume_outcome.computed,
            "resume_overhead_vs_warm": round(
                resume_seconds - warm_seconds + 1e-9, 4
            ),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _dist_version(name: str) -> Optional[str]:
    """Installed version of ``name``, or None when it is absent."""
    try:
        from importlib.metadata import version

        return version(name)
    except Exception:
        return None


def _differential_case(case_seed: int) -> bool:
    """Picklable worker: one small batched-vs-unbatched comparison."""
    rng = random.Random(case_seed)
    n = rng.randint(2, 8)
    ids = rng.sample(range(1, 200), n)
    slow = run_terminating(ids)
    fast = run_terminating(ids, batched=True)
    return (
        slow.leaders == fast.leaders
        and slow.total_pulses == fast.total_pulses == n * (2 * max(ids) + 1)
        and slow.run.termination_order == fast.run.termination_order
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid for smoke runs"
    )
    parser.add_argument(
        "--processes",
        default=None,
        help="worker processes for the differential sweep (int, 'auto', default serial)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=None,
        help="fail unless the best batched speedup meets this floor",
    )
    parser.add_argument(
        "--min-fleet-speedup",
        type=float,
        default=None,
        help="fail unless the fleet sweep speedup over batched meets this floor",
    )
    parser.add_argument(
        "--min-compiled-speedup",
        type=float,
        default=None,
        help="fail unless the compiled (JIT) fleet beats the numpy fleet "
        "by this factor; also fails when numba itself is missing",
    )
    parser.add_argument(
        "--min-cache-speedup",
        type=float,
        default=None,
        help="fail unless a warm sweep-farm campaign (all cache hits) "
        "beats the cold run by this factor",
    )
    args = parser.parse_args(argv)
    processes = args.processes
    if isinstance(processes, str):
        try:
            processes = int(processes)
        except ValueError:
            pass
    try:  # fail fast on a bad worker count, not after the whole grid
        resolve_processes(processes)
    except ConfigurationError as exc:
        parser.error(str(exc))

    grid = QUICK_GRID if args.quick else FULL_GRID
    configs = []
    for n, id_max in grid:
        print(f"benchmarking n={n} IDmax={id_max} ...", flush=True)
        config = bench_config(n, id_max)
        print(
            f"  unbatched {config['unbatched']['pulses_per_sec']:>10,} pulses/s | "
            f"batched {config['batched']['pulses_per_sec']:>12,} pulses/s "
            f"({config['batched']['speedup']}x) | "
            f"longest_run {config['batched_longest_run']['speedup']}x",
            flush=True,
        )
        configs.append(config)

    if args.quick:
        print("sweep workload: fleet=100 n=16 IDmax=10^4 ...", flush=True)
        sweep_config = bench_sweep(fleet_size=100, n=16, id_max=10**4, subsample=10)
    else:
        print("sweep workload: fleet=1000 n=64 IDmax=10^5 ...", flush=True)
        sweep_config = bench_sweep(fleet_size=1000, n=64, id_max=10**5, subsample=5)
    print(
        f"  fleet {sweep_config['fleet']['pulses_per_sec']:>12,} pulses/s "
        f"({sweep_config['backend']}) | "
        f"{sweep_config['fleet_speedup_vs_batched']}x vs batched | "
        f"{sweep_config['fleet_speedup_vs_unbatched']}x vs unbatched | "
        f"outcomes_match={sweep_config['outcomes_match']}",
        flush=True,
    )

    if args.quick:
        compiled_bench = bench_compiled(fleet_size=100, n=16, id_max=10**4)
    else:
        compiled_bench = bench_compiled(fleet_size=10**4, n=64, id_max=10**5)
    if compiled_bench.get("skipped"):
        print(f"  compiled tier: {compiled_bench['skipped']}", flush=True)
    else:
        print(
            f"  compiled {compiled_bench['compiled']['pulses_per_sec']:>12,} "
            f"pulses/s | {compiled_bench['compiled_speedup_vs_numpy']}x vs "
            f"numpy fleet | compile {compiled_bench['compile_seconds']}s | "
            f"outcomes_match={compiled_bench['outcomes_match']}",
            flush=True,
        )

    slots_bench = bench_slots()
    print(
        f"  slots micro-bench: unbatched {slots_bench['speedup_unbatched']}x, "
        f"batched {slots_bench['speedup_batched']}x vs pre-__slots__ baseline",
        flush=True,
    )

    print("farm workload: cold vs warm recovery campaign ...", flush=True)
    farm_bench = bench_farm(args.quick)
    print(
        f"  farm cold {farm_bench['cold_seconds']}s | warm "
        f"{farm_bench['warm_seconds']}s ({farm_bench['cache_speedup']}x) | "
        f"resume {farm_bench['resume_seconds']}s "
        f"(recomputed {farm_bench['resume_recomputed']} shard) | "
        f"byte_identical={farm_bench['byte_identical_collect']}",
        flush=True,
    )

    sweep_cases = 40
    sweep = parallel_map(
        _differential_case, range(sweep_cases), processes=processes
    )
    top_id_max = max(id_max for _n, id_max in grid)
    top_rows = [c for c in configs if c["id_max"] == top_id_max]
    speedups = {f"n={c['n']}": c["batched"]["speedup"] for c in top_rows}
    best = max(
        max(c["batched"]["speedup"], c["batched_longest_run"]["speedup"])
        for c in top_rows
    )
    report = {
        "generated_by": "benchmarks/run_engine_bench.py"
        + (" --quick" if args.quick else ""),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "thread_pins": {var: os.environ[var] for var in THREAD_PINS},
        "numpy_version": _dist_version("numpy"),
        "numba_version": _dist_version("numba"),
        "workload": "run_terminating (Theorem 1: exactly n(2*IDmax+1) pulses)",
        "grid": configs,
        "sweep": sweep_config,
        "compiled": compiled_bench,
        "slots_microbench": slots_bench,
        "farm": farm_bench,
        "differential_sweep": {
            "cases": sweep_cases,
            "all_match": all(sweep),
            "processes": args.processes or "serial",
        },
        "summary": {
            "top_id_max": top_id_max,
            "batched_speedup_at_top_id_max": speedups,
            "best_speedup_at_top_id_max": best,
            "meets_10x_at_top_id_max": best >= 10.0,
            "fleet_speedup_vs_batched": sweep_config["fleet_speedup_vs_batched"],
            "fleet_meets_10x_vs_batched": sweep_config["fleet_speedup_vs_batched"]
            >= 10.0,
            "compiled_speedup_vs_numpy": compiled_bench.get(
                "compiled_speedup_vs_numpy"
            ),
            "farm_cache_speedup": farm_bench["cache_speedup"],
            "farm_collect_byte_identical": farm_bench[
                "byte_identical_collect"
            ],
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if (
        not all(sweep)
        or not all(c["outcomes_match"] for c in configs)
        or not sweep_config["outcomes_match"]
        or not compiled_bench.get("outcomes_match", True)
    ):
        print("DIFFERENTIAL MISMATCH — fast engines disagree with reference")
        return 1
    if not farm_bench["byte_identical_collect"]:
        print("FARM MISMATCH — warm collect differs from cold collect")
        return 1
    if (
        args.min_cache_speedup is not None
        and farm_bench["cache_speedup"] < args.min_cache_speedup
    ):
        print(
            f"SPEEDUP REGRESSION — warm farm campaign "
            f"{farm_bench['cache_speedup']}x over cold below the required "
            f"{args.min_cache_speedup}x"
        )
        return 1
    if args.min_compiled_speedup is not None:
        achieved = compiled_bench.get("compiled_speedup_vs_numpy")
        if achieved is None:
            print(
                "SPEEDUP GATE UNMEASURABLE — --min-compiled-speedup needs "
                "numba (install the [jit] extra)"
            )
            return 1
        if achieved < args.min_compiled_speedup:
            print(
                f"SPEEDUP REGRESSION — compiled fleet {achieved}x over numpy "
                f"below the required {args.min_compiled_speedup}x"
            )
            return 1
    if (
        args.min_batched_speedup is not None
        and best < args.min_batched_speedup
    ):
        print(
            f"SPEEDUP REGRESSION — best batched speedup {best}x below the "
            f"required {args.min_batched_speedup}x"
        )
        return 1
    if (
        args.min_fleet_speedup is not None
        and sweep_config["fleet_speedup_vs_batched"] < args.min_fleet_speedup
    ):
        print(
            f"SPEEDUP REGRESSION — fleet sweep speedup "
            f"{sweep_config['fleet_speedup_vs_batched']}x below the required "
            f"{args.min_fleet_speedup}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
