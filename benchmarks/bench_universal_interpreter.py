"""E11 — Corollary 5 in full generality: the universal interpreter.

The strongest form of the paper's headline: an arbitrary content-
carrying asynchronous ring algorithm — Chang-Roberts 1979 itself —
executed over a fully defective ring with **no pre-existing root** (the
root is elected by Theorem 1 first).  The tables report pulse budgets,
token-hop counts, and the overhead of pulse-level simulation relative to
native content channels.
"""

from __future__ import annotations

import random

from repro.baselines import run_baseline
from repro.baselines.chang_roberts import ChangRobertsNode
from repro.core.composition import run_simulated_composed
from repro.defective.ring_algorithms import (
    SimBroadcast,
    SimChangRoberts,
    SimConvergecastSum,
)
from repro.defective.universal import simulate_ring_algorithm


def test_chang_roberts_over_pulses(report, benchmark):
    rows = []
    for n in (3, 4, 6, 8):
        ids = random.Random(n).sample(range(1, 12), n)
        native = run_baseline(ChangRobertsNode, ids)
        simulated = simulate_ring_algorithm([SimChangRoberts(i) for i in ids])
        winner_native = ids[native.leaders[0]]
        winner_sim = simulated.outputs[0][1]
        rows.append(
            (
                n,
                str(ids),
                winner_native,
                winner_sim,
                native.total_messages,
                simulated.total_pulses,
                simulated.token_hops,
            )
        )
        assert winner_native == winner_sim == max(ids)
    report.line(
        "E11: Chang-Roberts 1979 executed over pulse-only channels "
        "(same winner as native; pulses = the price of obliviousness)"
    )
    report.table(
        ["n", "ids", "native winner", "simulated winner",
         "native msgs", "pulses", "token hops"],
        rows,
    )
    ids = random.Random(4).sample(range(1, 12), 4)
    benchmark.pedantic(
        lambda: simulate_ring_algorithm([SimChangRoberts(i) for i in ids]),
        rounds=3,
        iterations=1,
    )


def test_rootless_end_to_end(report, benchmark):
    """Theorem 1 election composed with the universal interpreter."""
    rows = []
    for n in (3, 4, 6):
        ids = random.Random(n + 50).sample(range(1, 10), n)
        sims = [SimConvergecastSum(v) for v in range(1, n + 1)]
        outcome = run_simulated_composed(ids, sims)
        expected = n * (n + 1) // 2
        assert outcome.outputs == [expected] * n
        assert outcome.run.quiescently_terminated
        rows.append(
            (n, max(ids), expected, outcome.total_pulses,
             "yes" if outcome.run.termination_order[-1] == outcome.leader else "NO")
        )
    report.line(
        "E11b: rootless + contentless, end to end — elect (Thm 1), then "
        "simulate an arbitrary convergecast; quiescent, leader last"
    )
    report.table(["n", "IDmax", "sum computed", "total pulses", "leader last"], rows)
    ids = random.Random(53).sample(range(1, 10), 3)
    benchmark.pedantic(
        lambda: run_simulated_composed(
            ids, [SimConvergecastSum(v) for v in (1, 2, 3)]
        ),
        rounds=3,
        iterations=1,
    )


def test_simulation_overhead_profile(report, benchmark):
    """Pulse cost vs payload magnitude: the unary rate, quantified."""
    rows = []
    for value in (1, 4, 16, 64):
        outcome = simulate_ring_algorithm(
            [SimBroadcast(value)] + [SimBroadcast() for _ in range(3)], leader=0
        )
        assert outcome.outputs == [value] * 4
        rows.append((4, value, outcome.total_pulses, outcome.token_hops))
    report.line("E11c: universal-interpreter pulse cost vs broadcast payload")
    report.table(["n", "payload", "pulses", "token hops"], rows)
    benchmark.pedantic(
        lambda: simulate_ring_algorithm(
            [SimBroadcast(16)] + [SimBroadcast() for _ in range(3)]
        ),
        rounds=3,
        iterations=1,
    )
