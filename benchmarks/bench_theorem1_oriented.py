"""E1 — Theorem 1: quiescently terminating election on oriented rings.

Regenerates the paper's headline claim as a table: for every workload the
measured pulse count must equal ``n(2*IDmax + 1)`` **exactly**, the
maximal-ID node must win, and termination must be quiescent with the
leader last — under several adversarial schedulers.

Timings (pytest-benchmark) additionally characterize the simulator's
throughput on this algorithm.
"""

from __future__ import annotations

import random

import pytest

from repro.core.terminating import run_terminating
from repro.simulator.scheduler import (
    AdversarialLagScheduler,
    GlobalFifoScheduler,
    LifoScheduler,
    RandomScheduler,
)

SCHEDULERS = {
    "global_fifo": GlobalFifoScheduler,
    "lifo": LifoScheduler,
    "random": lambda: RandomScheduler(seed=7),
    "lag_ccw": AdversarialLagScheduler.lagging_ccw,
    "lag_cw": AdversarialLagScheduler.lagging_cw,
}


def dense_ids(n: int, seed: int = 1) -> list:
    rng = random.Random(seed)
    ids = list(range(1, n + 1))
    rng.shuffle(ids)
    return ids


def sparse_ids(n: int, spread: int, seed: int = 2) -> list:
    rng = random.Random(seed)
    return rng.sample(range(1, spread + 1), n)


def test_theorem1_exactness_table(report, benchmark):
    """The E1 table: claimed vs measured pulses across n and ID shapes."""
    rows = []
    for n in (1, 2, 4, 8, 16, 32, 64):
        for shape, ids in (
            ("dense", dense_ids(n)),
            ("sparse", sparse_ids(n, spread=8 * n + 8)),
        ):
            outcome = run_terminating(ids)
            claimed = n * (2 * max(ids) + 1)
            rows.append(
                (
                    n,
                    shape,
                    max(ids),
                    claimed,
                    outcome.total_pulses,
                    "yes" if outcome.total_pulses == claimed else "NO",
                    "yes" if outcome.leaders == [outcome.expected_leader] else "NO",
                    "yes" if outcome.run.quiescently_terminated else "NO",
                )
            )
            assert outcome.total_pulses == claimed
            assert outcome.leaders == [outcome.expected_leader]
            assert outcome.run.quiescently_terminated
    report.line("Theorem 1: message complexity n(2*IDmax+1), exact")
    report.table(
        ["n", "ids", "IDmax", "claimed", "measured", "exact", "max wins", "q-term"],
        rows,
    )
    benchmark.pedantic(
        lambda: run_terminating(dense_ids(32)), rounds=3, iterations=1
    )


def test_theorem1_schedule_invariance(report, benchmark):
    """Pulse count and winner are identical under every adversary."""
    ids = sparse_ids(12, spread=300, seed=5)
    rows = []
    for name, factory in SCHEDULERS.items():
        outcome = run_terminating(ids, scheduler=factory())
        rows.append(
            (
                name,
                outcome.total_pulses,
                outcome.ids[outcome.leaders[0]],
                outcome.run.termination_order[-1] == outcome.expected_leader,
            )
        )
    assert len({row[1] for row in rows}) == 1
    assert len({row[2] for row in rows}) == 1
    report.line(f"Theorem 1 under adversarial schedules (ids={ids})")
    report.table(["scheduler", "pulses", "winner id", "leader last"], rows)
    benchmark.pedantic(
        lambda: run_terminating(ids, scheduler=RandomScheduler(seed=0)),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("n", [8, 32, 128])
def test_theorem1_scaling_throughput(benchmark, n):
    """Simulator throughput as rings grow (IDmax pinned to 4n)."""
    ids = sparse_ids(n, spread=4 * n, seed=n)
    result = benchmark.pedantic(lambda: run_terminating(ids), rounds=3, iterations=1)
    assert result.total_pulses == n * (2 * max(ids) + 1)


def test_theorem1_idmax_dominates_cost(report, benchmark):
    """Cost grows linearly in IDmax at fixed n — the term Theorem 4 proves inherent."""
    n = 8
    rows = []
    for id_max in (8, 32, 128, 512, 2048):
        ids = list(range(1, n)) + [id_max]
        outcome = run_terminating(ids)
        rows.append((n, id_max, outcome.total_pulses, outcome.total_pulses / id_max))
        assert outcome.total_pulses == n * (2 * id_max + 1)
    report.line("Cost vs IDmax at fixed n=8 (linear in IDmax, slope 2n)")
    report.table(["n", "IDmax", "pulses", "pulses/IDmax"], rows)
    benchmark.pedantic(
        lambda: run_terminating(list(range(1, 8)) + [2048]), rounds=3, iterations=1
    )
