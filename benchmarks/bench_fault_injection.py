"""E9 — negative reproduction: the channel assumptions are necessary.

The model allows the noise to corrupt content but never to drop or
inject pulses (paper, Section 2).  This bench violates each assumption
at increasing rates and censuses the damage to Theorem 1's guarantees:
wrong/missing leaders, lost termination, counter-conservation failures,
and livelocks from injected pulses that nothing can ever absorb.
"""

from __future__ import annotations

from repro.core.common import LeaderState
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.exceptions import SimulationLimitExceeded
from repro.simulator.engine import Engine
from repro.simulator.faults import FaultPlan, apply_fault_plan, total_faults
from repro.simulator.ring import build_oriented_ring

IDS = [3, 9, 5, 2, 7]
TRIALS = 25


def faulty_run(node_cls, plan, max_steps=30_000):
    nodes = [node_cls(node_id) for node_id in IDS]
    topology = build_oriented_ring(nodes)
    apply_fault_plan(topology.network, plan)
    result = Engine(topology.network, max_steps=max_steps).run()
    return nodes, result, topology.network


def census(node_cls, plan_factory, check):
    """Count trials where `check(nodes, result)` reports damage."""
    damaged = livelocked = faultless = 0
    for seed in range(TRIALS):
        plan = plan_factory(seed)
        try:
            nodes, result, network = faulty_run(node_cls, plan)
        except SimulationLimitExceeded:
            livelocked += 1
            continue
        if sum(total_faults(network)) == 0:
            faultless += 1
            continue
        if check(nodes, result):
            damaged += 1
    return damaged, livelocked, faultless


def test_pulse_loss_census(report, benchmark):
    rows = []
    for rate in (0.05, 0.15, 0.35):
        damaged, livelocked, faultless = census(
            TerminatingNode,
            lambda seed, rate=rate: FaultPlan(drop_rate=rate, seed=seed),
            lambda nodes, result: (
                not result.all_terminated
                or [i for i, n in enumerate(nodes) if n.output is LeaderState.LEADER] != [1]
            ),
        )
        rows.append((f"{rate:.2f}", TRIALS, damaged, livelocked, faultless))
    report.line(
        "E9a: pulse LOSS vs Theorem 1 (damage = missing termination or "
        "wrong leader; n=5, IDmax=9)"
    )
    report.table(
        ["drop rate", "trials", "damaged", "livelocked", "fault-free"], rows
    )
    # At the heaviest rate, damage must be the norm.
    assert rows[-1][2] + rows[-1][3] > TRIALS // 2
    benchmark.pedantic(
        lambda: faulty_run(TerminatingNode, FaultPlan(drop_rate=0.35, seed=1)),
        rounds=3,
        iterations=1,
    )


def test_pulse_injection_census(report, benchmark):
    rows = []
    for rate in (0.05, 0.15, 0.35):
        damaged, livelocked, faultless = census(
            WarmupNode,
            lambda seed, rate=rate: FaultPlan(duplicate_rate=rate, seed=seed),
            lambda nodes, result: any(node.rho_cw > max(IDS) for node in nodes),
        )
        rows.append((f"{rate:.2f}", TRIALS, damaged, livelocked, faultless))
    report.line(
        "E9b: pulse INJECTION vs Algorithm 1 (damage = Corollary 14 "
        "overshoot; livelock = unabsorbable extra pulse circulating)"
    )
    report.table(
        ["dup rate", "trials", "damaged", "livelocked", "fault-free"], rows
    )
    assert rows[-1][2] + rows[-1][3] > 0
    benchmark.pedantic(
        lambda: census(
            WarmupNode,
            lambda seed: FaultPlan(duplicate_rate=0.05, seed=seed),
            lambda nodes, result: False,
        ),
        rounds=1,
        iterations=1,
    )


def test_control_arm_is_clean(report, benchmark):
    """Without faults the same instances meet every guarantee (control)."""
    nodes = [TerminatingNode(node_id) for node_id in IDS]
    topology = build_oriented_ring(nodes)
    result = Engine(topology.network).run()
    assert result.quiescently_terminated
    assert result.total_sent == 5 * (2 * 9 + 1)
    report.line(
        "E9 control: identical rings with model-conforming channels meet "
        f"Theorem 1 exactly ({result.total_sent} pulses, quiescent, leader last)"
    )
    benchmark.pedantic(
        lambda: Engine(
            build_oriented_ring([TerminatingNode(i) for i in IDS]).network
        ).run(),
        rounds=3,
        iterations=1,
    )
