"""E2 + A2 — Theorem 2 / Proposition 15: non-oriented rings.

Regenerates both exact complexity claims and the orientation guarantee:

* doubled virtual IDs (Prop 15): exactly ``n(4*IDmax - 1)`` pulses;
* successor virtual IDs (Thm 2):  exactly ``n(2*IDmax + 1)`` pulses;
* every sampled adversarial port-flip pattern yields a single leader
  (the maximal ID) and a globally consistent orientation (Figure 1's
  scenario, repaired).

The A2 ablation row quantifies the factor-two saving of the improved ID
scheme.
"""

from __future__ import annotations

import random

from repro.core.nonoriented import IdScheme, run_nonoriented


def workload(n: int, seed: int = 3):
    rng = random.Random(seed)
    ids = rng.sample(range(1, 6 * n + 2), n)
    flips = [rng.random() < 0.5 for _ in range(n)]
    return ids, flips


def test_theorem2_and_prop15_exactness(report, benchmark):
    rows = []
    for n in (1, 2, 4, 8, 16, 32):
        ids, flips = workload(n)
        id_max = max(ids)
        for scheme, formula in (
            (IdScheme.DOUBLED, n * (4 * id_max - 1)),
            (IdScheme.SUCCESSOR, n * (2 * id_max + 1)),
        ):
            outcome = run_nonoriented(ids, flips=flips, scheme=scheme)
            rows.append(
                (
                    n,
                    id_max,
                    scheme.value,
                    formula,
                    outcome.total_pulses,
                    "yes" if outcome.total_pulses == formula else "NO",
                    "yes" if len(outcome.leaders) == 1 else "NO",
                    "yes" if outcome.orientation_consistent else "NO",
                )
            )
            assert outcome.total_pulses == formula
            assert outcome.orientation_consistent
    report.line("Theorem 2 (successor) vs Proposition 15 (doubled), exact pulses")
    report.table(
        ["n", "IDmax", "scheme", "claimed", "measured", "exact", "1 leader", "oriented"],
        rows,
    )
    ids, flips = workload(16)
    benchmark.pedantic(
        lambda: run_nonoriented(ids, flips=flips), rounds=3, iterations=1
    )


def test_a2_scheme_saving_ablation(report, benchmark):
    """A2: the Theorem-2 ID choice halves Proposition 15's pulse count."""
    rows = []
    for n in (4, 8, 16, 32):
        ids, flips = workload(n, seed=n)
        doubled = run_nonoriented(ids, flips=flips, scheme=IdScheme.DOUBLED)
        successor = run_nonoriented(ids, flips=flips, scheme=IdScheme.SUCCESSOR)
        ratio = doubled.total_pulses / successor.total_pulses
        rows.append(
            (n, max(ids), doubled.total_pulses, successor.total_pulses, f"{ratio:.3f}")
        )
        assert 1.8 < ratio < 2.0
    report.line("A2 ablation: doubled vs successor virtual IDs (ratio -> 2)")
    report.table(["n", "IDmax", "doubled", "successor", "ratio"], rows)
    ids, flips = workload(16, seed=16)
    benchmark.pedantic(
        lambda: run_nonoriented(ids, flips=flips, scheme=IdScheme.DOUBLED),
        rounds=3,
        iterations=1,
    )


def test_f1_orientation_repair_over_flip_space(report, benchmark):
    """F1 (Figure 1): every flip pattern of a 6-ring gets repaired."""
    from repro.simulator.ring import all_flip_patterns

    ids = [4, 19, 7, 12, 3, 9]
    consistent = 0
    patterns = all_flip_patterns(6)
    for flips in patterns:
        outcome = run_nonoriented(ids, flips=list(flips))
        assert outcome.leaders == [1]
        assert outcome.orientation_consistent
        consistent += 1
    report.line(
        f"Figure 1 scenario: {consistent}/{len(patterns)} port assignments of a "
        "6-ring repaired to a consistent orientation (exhaustive)"
    )
    benchmark.pedantic(
        lambda: run_nonoriented(ids, flips=[True, False] * 3),
        rounds=3,
        iterations=1,
    )
