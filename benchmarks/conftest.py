"""Shared reporting machinery for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index (the
paper has no empirical tables, so the "tables" are its theorems' claimed
quantities) and emits a human-readable table: paper-claimed value next to
the measured one.  Tables are accumulated here and printed in the
terminal summary so they survive pytest's output capture; they are also
written to ``benchmarks/results/`` for the record.
"""

from __future__ import annotations

import pathlib
from typing import List, Sequence, Tuple

import pytest

_SECTIONS: List[Tuple[str, List[str]]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class ExperimentReport:
    """Collects one experiment's table for the terminal summary."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.lines: List[str] = []
        _SECTIONS.append((title, self.lines))

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        """Append an aligned text table."""
        cells = [[str(cell) for cell in row] for row in rows]
        widths = [
            max(len(headers[col]), *(len(row[col]) for row in cells)) if cells else len(headers[col])
            for col in range(len(headers))
        ]
        def fmt(row):
            return "  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(row))

        self.line(fmt(headers))
        self.line(fmt(["-" * w for w in widths]))
        for row in cells:
            self.line(fmt(row))


@pytest.fixture
def report(request) -> ExperimentReport:
    """Per-test experiment report, keyed by the test's id."""
    return ExperimentReport(request.node.nodeid)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _SECTIONS:
        return
    terminalreporter.section("experiment reproduction tables")
    _RESULTS_DIR.mkdir(exist_ok=True)
    dump = []
    for title, lines in _SECTIONS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {title}")
        dump.append(f"== {title}")
        for line in lines:
            terminalreporter.write_line(line)
            dump.append(line)
        dump.append("")
    (_RESULTS_DIR / "experiment_tables.txt").write_text("\n".join(dump) + "\n")
