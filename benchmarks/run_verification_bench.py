"""Model-checking benchmark: the reduction stack vs unreduced exploration.

Runs the unreduced reference search and every reduction mode (``ample``,
``sleep``, ``symmetry``, ``full``) on a grid of small instances and
certifies, per instance and per mode, that the reduced search reproduces
the reference verdicts exactly (terminal node fingerprints, confluence,
per-terminal message counts) while visiting fewer states.  Load-bearing
rows for the acceptance criteria recorded in ``docs/VERIFICATION.md``:

* the **reference instance** (Algorithm 1 on ``[1..6]``), where plain
  ample-set reduction alone must visit at least 10x fewer states than
  the unreduced search;
* every Algorithm 2/3 grid row, where the ``full`` stack's
  orbit-adjusted state reduction must reach at least the ring size
  ``n`` (the symmetry layer's guaranteed orbit factor) — enforced by
  per-row gates plus the repeatable ``--min-reduction ALG=RATIO``
  override; and
* the **frontier instances** — one per algorithm — which the unreduced
  search cannot finish within the shared state budget but the ``full``
  stack both finishes and certifies.

A further section benchmarks the **statistical** checker
(:mod:`repro.verification.statistical`) at scales enumeration cannot
touch: sampled instances per second through the fleet with the per-round
invariant battery on, the Clopper-Pearson pass-rate interval, and the
fault-injection self-test (an injected pulse drop must be caught,
bisected to its instance, and replayed).

Results land in a machine-readable ``BENCH_verification.json`` at the
repo root::

    PYTHONPATH=src python benchmarks/run_verification_bench.py          # full grid
    PYTHONPATH=src python benchmarks/run_verification_bench.py --quick  # CI smoke
    PYTHONPATH=src python benchmarks/run_verification_bench.py --quick \\
        --min-reduction terminating=3 --min-reduction nonoriented=3
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from typing import Dict, List, Optional, Sequence

from repro.core.nonoriented import NonOrientedNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.verification import (
    REDUCTION_MODES,
    ExplorationLimitExceeded,
    explore_all_schedules,
    explore_reduced,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

REFERENCE_IDS = [1, 2, 3, 4, 5, 6]

#: Grid rows: (algorithm, ids, flips-or-None).  Oriented algorithms get
#: rotations only; nonoriented rows add orientation-duals, so their
#: guaranteed orbit factor is 2n instead of n.
FULL_GRID = [
    ("warmup", [1, 2, 3], None),
    ("warmup", [2, 3, 1, 4], None),
    ("warmup", REFERENCE_IDS, None),
    ("terminating", [2, 3, 1], None),
    ("terminating", [2, 3, 1, 4], None),
    ("terminating", [1, 2, 3, 4, 5, 6], None),
    ("nonoriented", [1, 2, 3], [False, True, False]),
]
QUICK_GRID = [
    ("warmup", [1, 2, 3], None),
    ("warmup", REFERENCE_IDS, None),
    ("terminating", [2, 3, 1], None),
    ("nonoriented", [1, 2, 3], [False, True, False]),
]

#: Frontier rows: (algorithm, ids, flips, state budget).  Calibrated so
#: the unreduced search exceeds the budget while the full stack finishes
#: inside it — each row is one instance (orbit of instances) certified
#: beyond the unreduced explorer's reach.
FRONTIERS = [
    ("warmup", [1, 2, 3, 4, 5, 6, 7], None, 2_000),
    ("terminating", [1, 2, 3, 4, 5, 6], None, 4_000),
    ("nonoriented", [1, 2, 3, 4], [False, True, False, False], 4_000),
]


def _factory(algorithm: str, ids: List[int], flips: Optional[List[bool]]):
    def build():
        if algorithm == "warmup":
            return build_oriented_ring([WarmupNode(i) for i in ids]).network
        if algorithm == "terminating":
            return build_oriented_ring([TerminatingNode(i) for i in ids]).network
        nodes = [NonOrientedNode(i) for i in ids]
        return build_nonoriented_ring(
            nodes, flips=flips if flips is not None else [False] * len(ids)
        ).network

    return build


def _expected_pulses(algorithm: str, ids: List[int]) -> Optional[int]:
    """The paper's exact message bound, where one exists."""
    if algorithm == "warmup":
        return len(ids) * max(ids)  # Corollary 13: n * IDmax
    if algorithm == "terminating":
        return len(ids) * (2 * max(ids) + 1)  # Theorem 1: n(2*IDmax + 1)
    return None  # Algorithm 3 stabilizes; no closed-form pulse count


def bench_instance(
    algorithm: str, ids: List[int], flips: Optional[List[bool]]
) -> Dict:
    factory = _factory(algorithm, ids, flips)
    include_duals = algorithm == "nonoriented"
    t0 = time.perf_counter()
    unreduced = explore_all_schedules(factory)
    t_unreduced = time.perf_counter() - t0

    modes: Dict[str, Dict] = {}
    for mode in REDUCTION_MODES:
        t0 = time.perf_counter()
        reduced = explore_reduced(
            factory, reduction=mode, include_duals=include_duals
        )
        seconds = time.perf_counter() - t0
        agree = (
            set(unreduced.terminal_node_fingerprints)
            == set(reduced.terminal_node_fingerprints)
            and unreduced.confluent == reduced.confluent
            and sorted(unreduced.terminal_total_sent)
            == sorted(reduced.terminal_total_sent)
        )
        modes[mode] = {
            **reduced.summary(),
            "seconds": round(seconds, 4),
            "state_reduction": round(
                reduced.state_reduction_vs(unreduced.states_explored), 2
            ),
            "verdicts_agree": agree,
        }

    row = {
        "algorithm": algorithm,
        "ids": ids,
        "n": len(ids),
        "unreduced_states": unreduced.states_explored,
        "unreduced_seconds": round(t_unreduced, 4),
        "modes": modes,
        # Legacy top-level fields mirror the strongest stack.
        "reduced_states": modes["full"]["states"],
        "reduced_seconds": modes["full"]["seconds"],
        "state_reduction": modes["full"]["state_reduction"],
        "confluent": modes["full"]["confluent"],
        "quiescence_violations": modes["full"]["quiescence_violations"],
        "verdicts_agree": all(m["verdicts_agree"] for m in modes.values()),
    }
    if flips is not None:
        row["flips"] = flips
    return row


def bench_frontier(
    algorithm: str, ids: List[int], flips: Optional[List[bool]], budget: int
) -> Dict:
    """One instance only the reduced search can certify within budget."""
    factory = _factory(algorithm, ids, flips)
    include_duals = algorithm == "nonoriented"
    t0 = time.perf_counter()
    try:
        explore_all_schedules(factory, max_states=budget)
        unreduced_exhausted_budget = False
    except ExplorationLimitExceeded:
        unreduced_exhausted_budget = True
    t_unreduced = time.perf_counter() - t0
    t0 = time.perf_counter()
    reduced = explore_reduced(
        factory, max_states=budget, reduction="full", include_duals=include_duals
    )
    t_reduced = time.perf_counter() - t0
    expected = _expected_pulses(algorithm, ids)
    certified = reduced.confluent and reduced.quiescence_violations == 0
    if expected is not None:
        certified = certified and reduced.terminal_total_sent == [expected]
    row = {
        "algorithm": algorithm,
        "ids": ids,
        "n": len(ids),
        "state_budget": budget,
        "unreduced_exceeded_budget": unreduced_exhausted_budget,
        "unreduced_seconds": round(t_unreduced, 4),
        "reduced_states": reduced.states_explored,
        "reduced_seconds": round(t_reduced, 4),
        "orbit_factor": reduced.orbit_factor,
        "instances_certified": reduced.instances_certified,
        "visited_bytes": reduced.visited_bytes,
        "expected_pulses": expected,
        "reduced_certified_bound": certified,
        # A lower bound: the unreduced search was cut off at the budget,
        # so the true per-instance state count is at least ``budget``.
        "min_state_reduction": round(reduced.state_reduction_vs(budget), 2),
    }
    if flips is not None:
        row["flips"] = flips
    return row


def parse_min_reductions(specs: Optional[Sequence[str]]) -> Dict[str, float]:
    """Parse repeatable ``--min-reduction ALG=RATIO`` gate overrides."""
    gates: Dict[str, float] = {}
    for spec in specs or ():
        try:
            algorithm, _, value = spec.partition("=")
            gates[algorithm.strip()] = float(value)
        except ValueError:
            raise SystemExit(
                f"bad --min-reduction {spec!r}; expected ALG=RATIO"
            )
    return gates


def check_reduction_gates(
    rows: List[Dict], overrides: Dict[str, float]
) -> List[Dict]:
    """Evaluate the per-row and per-algorithm reduction gates.

    Every row's ``full``-stack orbit-adjusted reduction must reach the
    row's ring size (the symmetry layer's guaranteed orbit factor;
    doubled would be too strict for rows where ample finds little).  An
    override additionally requires the algorithm's *best* row to reach
    the given ratio.
    """
    checks: List[Dict] = []
    for row in rows:
        ratio = row["modes"]["full"]["state_reduction"]
        required = float(row["n"])
        checks.append(
            {
                "scope": f"{row['algorithm']} {row['ids']}",
                "required": required,
                "achieved": ratio,
                "ok": ratio >= required,
            }
        )
    for algorithm, required in overrides.items():
        achieved = max(
            (
                row["modes"]["full"]["state_reduction"]
                for row in rows
                if row["algorithm"] == algorithm
            ),
            default=0.0,
        )
        checks.append(
            {
                "scope": f"{algorithm} (best row, --min-reduction)",
                "required": required,
                "achieved": achieved,
                "ok": achieved >= required,
            }
        )
    return checks


STATISTICAL_FULL = {"samples": 100_000, "n": 32, "id_max": 100_000}
STATISTICAL_QUICK = {"samples": 5_000, "n": 16, "id_max": 10_000}


def bench_statistical(quick: bool) -> Dict:
    """Sampled-schedule checking throughput + the fault self-test."""
    from repro.simulator.fleet import FleetFault
    from repro.verification.statistical import run_statistical_check

    params = STATISTICAL_QUICK if quick else STATISTICAL_FULL
    t0 = time.perf_counter()
    clean = run_statistical_check(
        n=params["n"],
        id_max=params["id_max"],
        samples=params["samples"],
        block_size=4096,
    )
    t_clean = time.perf_counter() - t0

    fault = FleetFault(round_index=3, node=1, direction="cw", instance=17)
    t0 = time.perf_counter()
    faulted = run_statistical_check(
        n=8, id_max=100, samples=64, block_size=64, fault=fault
    )
    t_fault = time.perf_counter() - t0
    replayed = bool(
        faulted.counterexamples
        and faulted.counterexamples[0].instance == 17
        and faulted.counterexamples[0].replay() is not None
    )
    return {
        "workload": "run_statistical_check (per-round invariant battery "
        "+ end-state Theorem 1 contract)",
        **params,
        "backend": clean.backend,
        "scheduler": clean.scheduler,
        "violations": clean.violations,
        "pass_rate": clean.pass_rate,
        "cp_interval_99": [round(clean.rate_low, 6), round(clean.rate_high, 6)],
        "seconds": round(t_clean, 4),
        "samples_per_second": round(params["samples"] / t_clean, 1),
        "fault_self_test": {
            "injected": "drop 1 CW pulse, round 3, instance 17",
            "caught": not faulted.clean,
            "localized_to_instance": replayed,
            "seconds": round(t_fault, 4),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid for smoke runs"
    )
    parser.add_argument(
        "--min-reduction",
        action="append",
        metavar="ALG=RATIO",
        help="require the algorithm's best full-stack orbit-adjusted "
        "reduction to reach RATIO (repeatable); per-row >= ring-size "
        "gates always apply",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_verification.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    overrides = parse_min_reductions(args.min_reduction)

    grid = QUICK_GRID if args.quick else FULL_GRID
    rows = []
    for algorithm, ids, flips in grid:
        print(f"benchmarking {algorithm} {ids} ...", flush=True)
        row = bench_instance(algorithm, ids, flips)
        full = row["modes"]["full"]
        print(
            f"  unreduced {row['unreduced_states']:>6} states | full stack "
            f"{full['states']:>6} states, orbit {full['orbit_factor']}x | "
            f"{full['state_reduction']}x orbit-adjusted | "
            f"agree={row['verdicts_agree']}",
            flush=True,
        )
        rows.append(row)

    frontier_rows = []
    for algorithm, ids, flips, budget in FRONTIERS:
        print(f"frontier: {algorithm} {ids} @ budget {budget} ...", flush=True)
        frontier = bench_frontier(algorithm, ids, flips, budget)
        print(
            f"  unreduced exceeded budget: "
            f"{frontier['unreduced_exceeded_budget']} | full stack "
            f"{frontier['reduced_states']} states certifying "
            f"{frontier['instances_certified']} instances, certified: "
            f"{frontier['reduced_certified_bound']}",
            flush=True,
        )
        frontier_rows.append(frontier)

    print("statistical: sampled-schedule checking ...", flush=True)
    statistical = bench_statistical(args.quick)
    print(
        f"  {statistical['samples']} samples @ n={statistical['n']}, "
        f"IDmax={statistical['id_max']}: pass rate "
        f"{statistical['pass_rate']} in {statistical['seconds']}s "
        f"({statistical['samples_per_second']}/s) | fault self-test "
        f"caught={statistical['fault_self_test']['caught']}",
        flush=True,
    )

    reference = next(
        (
            row
            for row in rows
            if row["algorithm"] == "warmup" and row["ids"] == REFERENCE_IDS
        ),
        None,
    )
    # The original ample-only criterion, unchanged: plain persistent-set
    # reduction must carry the reference instance on its own.
    reference_ok = (
        reference is not None
        and reference["unreduced_states"]
        >= 10 * reference["modes"]["ample"]["states"]
        and reference["verdicts_agree"]
    )
    all_agree = all(row["verdicts_agree"] for row in rows)
    frontiers_ok = all(
        row["unreduced_exceeded_budget"] and row["reduced_certified_bound"]
        for row in frontier_rows
    )
    reduction_gates = check_reduction_gates(rows, overrides)
    gates_ok = all(gate["ok"] for gate in reduction_gates)
    statistical_ok = (
        statistical["violations"] == 0
        and statistical["fault_self_test"]["caught"]
        and statistical["fault_self_test"]["localized_to_instance"]
    )

    report = {
        "generated_by": "benchmarks/run_verification_bench.py"
        + (" --quick" if args.quick else ""),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": "explore_all_schedules vs explore_reduced "
        "(ample/sleep/symmetry/full reduction stack + counting states)",
        "grid": rows,
        "frontier": frontier_rows,
        "reduction_gates": reduction_gates,
        "statistical": statistical,
        "summary": {
            "reference_instance": {
                "algorithm": "warmup",
                "ids": REFERENCE_IDS,
                "ample_state_reduction": round(
                    reference["unreduced_states"]
                    / reference["modes"]["ample"]["states"],
                    2,
                )
                if reference
                else None,
                "meets_10x": reference_ok,
            },
            "all_verdicts_agree": all_agree,
            "reduction_gates_met": gates_ok,
            "frontiers_certified_beyond_unreduced": frontiers_ok,
            "statistical_clean_and_self_test_caught": statistical_ok,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for gate in reduction_gates:
        status = "ok" if gate["ok"] else "FAIL"
        print(
            f"  gate [{status}] {gate['scope']}: {gate['achieved']}x "
            f"(required {gate['required']}x)"
        )
    if not (
        reference_ok and all_agree and gates_ok and frontiers_ok and statistical_ok
    ):
        print("ACCEPTANCE CRITERIA NOT MET — see summary in the JSON report")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
