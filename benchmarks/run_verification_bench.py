"""Model-checking benchmark: reduced vs unreduced schedule exploration.

Runs both explorers on a grid of small instances and certifies, per
instance, that the partial-order-reduced search reproduces the reference
search's verdicts exactly (terminal node fingerprints, confluence,
per-terminal message counts) while visiting fewer states.  Two rows are
load-bearing for the acceptance criteria recorded in
``docs/VERIFICATION.md``:

* the **reference instance** (Algorithm 1 on ``[1..6]``), where the
  reduced search must visit at least 10x fewer states than the
  unreduced one with identical terminal fingerprints and confluence
  verdict; and
* the **frontier instance** (Algorithm 1 on ``[1..7]`` under a shared
  2000-state budget), which the unreduced search cannot finish but the
  reduced search both finishes and certifies the exact ``n*IDmax``
  message bound on.

Results land in a machine-readable ``BENCH_verification.json`` at the
repo root::

    PYTHONPATH=src python benchmarks/run_verification_bench.py          # full grid
    PYTHONPATH=src python benchmarks/run_verification_bench.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from typing import Dict, List, Optional

from repro.core.nonoriented import NonOrientedNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.verification import (
    ExplorationLimitExceeded,
    explore_all_schedules,
    explore_reduced,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

REFERENCE_IDS = [1, 2, 3, 4, 5, 6]
FRONTIER_IDS = [1, 2, 3, 4, 5, 6, 7]
FRONTIER_BUDGET = 2_000

FULL_GRID = [
    ("warmup", [1, 2, 3]),
    ("warmup", [2, 3, 1, 4]),
    ("warmup", REFERENCE_IDS),
    ("terminating", [2, 3, 1]),
    ("terminating", [2, 3, 1, 4]),
    ("terminating", [1, 2, 3, 4, 5, 6]),
    ("nonoriented", [1, 2, 3]),
]
QUICK_GRID = [
    ("warmup", [1, 2, 3]),
    ("warmup", REFERENCE_IDS),
    ("terminating", [2, 3, 1]),
]


def _factory(algorithm: str, ids: List[int]):
    def build():
        if algorithm == "warmup":
            return build_oriented_ring([WarmupNode(i) for i in ids]).network
        if algorithm == "terminating":
            return build_oriented_ring([TerminatingNode(i) for i in ids]).network
        nodes = [NonOrientedNode(i) for i in ids]
        flips = [index % 2 == 1 for index in range(len(ids))]
        return build_nonoriented_ring(nodes, flips=flips).network

    return build


def bench_instance(algorithm: str, ids: List[int]) -> Dict:
    factory = _factory(algorithm, ids)
    t0 = time.perf_counter()
    unreduced = explore_all_schedules(factory)
    t_unreduced = time.perf_counter() - t0
    t0 = time.perf_counter()
    reduced = explore_reduced(factory)
    t_reduced = time.perf_counter() - t0
    agree = (
        set(unreduced.terminal_node_fingerprints)
        == set(reduced.terminal_node_fingerprints)
        and unreduced.confluent == reduced.confluent
        and sorted(unreduced.terminal_total_sent)
        == sorted(reduced.terminal_total_sent)
    )
    return {
        "algorithm": algorithm,
        "ids": ids,
        "unreduced_states": unreduced.states_explored,
        "unreduced_seconds": round(t_unreduced, 4),
        "reduced_states": reduced.states_explored,
        "reduced_seconds": round(t_reduced, 4),
        "state_reduction": round(
            unreduced.states_explored / reduced.states_explored, 2
        ),
        "confluent": reduced.confluent,
        "quiescence_violations": reduced.quiescence_violations,
        "terminal_total_sent": reduced.terminal_total_sent,
        "verdicts_agree": agree,
    }


def bench_frontier() -> Dict:
    """The instance only the reduced search can certify within budget."""
    factory = _factory("warmup", FRONTIER_IDS)
    t0 = time.perf_counter()
    try:
        explore_all_schedules(factory, max_states=FRONTIER_BUDGET)
        unreduced_exhausted_budget = False
    except ExplorationLimitExceeded:
        unreduced_exhausted_budget = True
    t_unreduced = time.perf_counter() - t0
    t0 = time.perf_counter()
    reduced = explore_reduced(factory, max_states=FRONTIER_BUDGET)
    t_reduced = time.perf_counter() - t0
    expected = len(FRONTIER_IDS) * max(FRONTIER_IDS)  # Corollary 13: n*IDmax
    certified = (
        reduced.confluent
        and reduced.quiescence_violations == 0
        and reduced.terminal_total_sent == [expected]
    )
    return {
        "algorithm": "warmup",
        "ids": FRONTIER_IDS,
        "state_budget": FRONTIER_BUDGET,
        "unreduced_exceeded_budget": unreduced_exhausted_budget,
        "unreduced_seconds": round(t_unreduced, 4),
        "reduced_states": reduced.states_explored,
        "reduced_seconds": round(t_reduced, 4),
        "expected_pulses": expected,
        "reduced_certified_bound": certified,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid for smoke runs"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_verification.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    rows = []
    for algorithm, ids in grid:
        print(f"benchmarking {algorithm} {ids} ...", flush=True)
        row = bench_instance(algorithm, ids)
        print(
            f"  unreduced {row['unreduced_states']:>6} states | reduced "
            f"{row['reduced_states']:>6} states | {row['state_reduction']}x | "
            f"agree={row['verdicts_agree']}",
            flush=True,
        )
        rows.append(row)

    print(f"frontier: warmup {FRONTIER_IDS} @ budget {FRONTIER_BUDGET} ...",
          flush=True)
    frontier = bench_frontier()
    print(
        f"  unreduced exceeded budget: {frontier['unreduced_exceeded_budget']} | "
        f"reduced {frontier['reduced_states']} states, certified bound: "
        f"{frontier['reduced_certified_bound']}",
        flush=True,
    )

    reference = next(
        (
            row
            for row in rows
            if row["algorithm"] == "warmup" and row["ids"] == REFERENCE_IDS
        ),
        None,
    )
    reference_ok = (
        reference is not None
        and reference["state_reduction"] >= 10.0
        and reference["verdicts_agree"]
    )
    all_agree = all(row["verdicts_agree"] for row in rows)
    frontier_ok = (
        frontier["unreduced_exceeded_budget"]
        and frontier["reduced_certified_bound"]
    )

    report = {
        "generated_by": "benchmarks/run_verification_bench.py"
        + (" --quick" if args.quick else ""),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": "explore_all_schedules vs explore_reduced "
        "(POR + counting states)",
        "grid": rows,
        "frontier": frontier,
        "summary": {
            "reference_instance": {
                "algorithm": "warmup",
                "ids": REFERENCE_IDS,
                "state_reduction": reference["state_reduction"]
                if reference
                else None,
                "meets_10x": reference_ok,
            },
            "all_verdicts_agree": all_agree,
            "frontier_certified_beyond_unreduced": frontier_ok,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not (reference_ok and all_agree and frontier_ok):
        print("ACCEPTANCE CRITERIA NOT MET — see summary in the JSON report")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
