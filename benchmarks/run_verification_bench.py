"""Model-checking benchmark: reduced vs unreduced schedule exploration.

Runs both explorers on a grid of small instances and certifies, per
instance, that the partial-order-reduced search reproduces the reference
search's verdicts exactly (terminal node fingerprints, confluence,
per-terminal message counts) while visiting fewer states.  Two rows are
load-bearing for the acceptance criteria recorded in
``docs/VERIFICATION.md``:

* the **reference instance** (Algorithm 1 on ``[1..6]``), where the
  reduced search must visit at least 10x fewer states than the
  unreduced one with identical terminal fingerprints and confluence
  verdict; and
* the **frontier instance** (Algorithm 1 on ``[1..7]`` under a shared
  2000-state budget), which the unreduced search cannot finish but the
  reduced search both finishes and certifies the exact ``n*IDmax``
  message bound on.

A third section benchmarks the **statistical** checker
(:mod:`repro.verification.statistical`) at scales enumeration cannot
touch: sampled instances per second through the fleet with the per-round
invariant battery on, the Clopper-Pearson pass-rate interval, and the
fault-injection self-test (an injected pulse drop must be caught,
bisected to its instance, and replayed).

Results land in a machine-readable ``BENCH_verification.json`` at the
repo root::

    PYTHONPATH=src python benchmarks/run_verification_bench.py          # full grid
    PYTHONPATH=src python benchmarks/run_verification_bench.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from typing import Dict, List, Optional

from repro.core.nonoriented import NonOrientedNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
from repro.verification import (
    ExplorationLimitExceeded,
    explore_all_schedules,
    explore_reduced,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

REFERENCE_IDS = [1, 2, 3, 4, 5, 6]
FRONTIER_IDS = [1, 2, 3, 4, 5, 6, 7]
FRONTIER_BUDGET = 2_000

FULL_GRID = [
    ("warmup", [1, 2, 3]),
    ("warmup", [2, 3, 1, 4]),
    ("warmup", REFERENCE_IDS),
    ("terminating", [2, 3, 1]),
    ("terminating", [2, 3, 1, 4]),
    ("terminating", [1, 2, 3, 4, 5, 6]),
    ("nonoriented", [1, 2, 3]),
]
QUICK_GRID = [
    ("warmup", [1, 2, 3]),
    ("warmup", REFERENCE_IDS),
    ("terminating", [2, 3, 1]),
]


def _factory(algorithm: str, ids: List[int]):
    def build():
        if algorithm == "warmup":
            return build_oriented_ring([WarmupNode(i) for i in ids]).network
        if algorithm == "terminating":
            return build_oriented_ring([TerminatingNode(i) for i in ids]).network
        nodes = [NonOrientedNode(i) for i in ids]
        flips = [index % 2 == 1 for index in range(len(ids))]
        return build_nonoriented_ring(nodes, flips=flips).network

    return build


def bench_instance(algorithm: str, ids: List[int]) -> Dict:
    factory = _factory(algorithm, ids)
    t0 = time.perf_counter()
    unreduced = explore_all_schedules(factory)
    t_unreduced = time.perf_counter() - t0
    t0 = time.perf_counter()
    reduced = explore_reduced(factory)
    t_reduced = time.perf_counter() - t0
    agree = (
        set(unreduced.terminal_node_fingerprints)
        == set(reduced.terminal_node_fingerprints)
        and unreduced.confluent == reduced.confluent
        and sorted(unreduced.terminal_total_sent)
        == sorted(reduced.terminal_total_sent)
    )
    return {
        "algorithm": algorithm,
        "ids": ids,
        "unreduced_states": unreduced.states_explored,
        "unreduced_seconds": round(t_unreduced, 4),
        "reduced_states": reduced.states_explored,
        "reduced_seconds": round(t_reduced, 4),
        "state_reduction": round(
            unreduced.states_explored / reduced.states_explored, 2
        ),
        "confluent": reduced.confluent,
        "quiescence_violations": reduced.quiescence_violations,
        "terminal_total_sent": reduced.terminal_total_sent,
        "verdicts_agree": agree,
    }


def bench_frontier() -> Dict:
    """The instance only the reduced search can certify within budget."""
    factory = _factory("warmup", FRONTIER_IDS)
    t0 = time.perf_counter()
    try:
        explore_all_schedules(factory, max_states=FRONTIER_BUDGET)
        unreduced_exhausted_budget = False
    except ExplorationLimitExceeded:
        unreduced_exhausted_budget = True
    t_unreduced = time.perf_counter() - t0
    t0 = time.perf_counter()
    reduced = explore_reduced(factory, max_states=FRONTIER_BUDGET)
    t_reduced = time.perf_counter() - t0
    expected = len(FRONTIER_IDS) * max(FRONTIER_IDS)  # Corollary 13: n*IDmax
    certified = (
        reduced.confluent
        and reduced.quiescence_violations == 0
        and reduced.terminal_total_sent == [expected]
    )
    return {
        "algorithm": "warmup",
        "ids": FRONTIER_IDS,
        "state_budget": FRONTIER_BUDGET,
        "unreduced_exceeded_budget": unreduced_exhausted_budget,
        "unreduced_seconds": round(t_unreduced, 4),
        "reduced_states": reduced.states_explored,
        "reduced_seconds": round(t_reduced, 4),
        "expected_pulses": expected,
        "reduced_certified_bound": certified,
    }


STATISTICAL_FULL = {"samples": 100_000, "n": 32, "id_max": 100_000}
STATISTICAL_QUICK = {"samples": 5_000, "n": 16, "id_max": 10_000}


def bench_statistical(quick: bool) -> Dict:
    """Sampled-schedule checking throughput + the fault self-test."""
    from repro.simulator.fleet import FleetFault
    from repro.verification.statistical import run_statistical_check

    params = STATISTICAL_QUICK if quick else STATISTICAL_FULL
    t0 = time.perf_counter()
    clean = run_statistical_check(
        n=params["n"],
        id_max=params["id_max"],
        samples=params["samples"],
        block_size=4096,
    )
    t_clean = time.perf_counter() - t0

    fault = FleetFault(round_index=3, node=1, direction="cw", instance=17)
    t0 = time.perf_counter()
    faulted = run_statistical_check(
        n=8, id_max=100, samples=64, block_size=64, fault=fault
    )
    t_fault = time.perf_counter() - t0
    replayed = bool(
        faulted.counterexamples
        and faulted.counterexamples[0].instance == 17
        and faulted.counterexamples[0].replay() is not None
    )
    return {
        "workload": "run_statistical_check (per-round invariant battery "
        "+ end-state Theorem 1 contract)",
        **params,
        "backend": clean.backend,
        "scheduler": clean.scheduler,
        "violations": clean.violations,
        "pass_rate": clean.pass_rate,
        "cp_interval_99": [round(clean.rate_low, 6), round(clean.rate_high, 6)],
        "seconds": round(t_clean, 4),
        "samples_per_second": round(params["samples"] / t_clean, 1),
        "fault_self_test": {
            "injected": "drop 1 CW pulse, round 3, instance 17",
            "caught": not faulted.clean,
            "localized_to_instance": replayed,
            "seconds": round(t_fault, 4),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid for smoke runs"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_verification.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    rows = []
    for algorithm, ids in grid:
        print(f"benchmarking {algorithm} {ids} ...", flush=True)
        row = bench_instance(algorithm, ids)
        print(
            f"  unreduced {row['unreduced_states']:>6} states | reduced "
            f"{row['reduced_states']:>6} states | {row['state_reduction']}x | "
            f"agree={row['verdicts_agree']}",
            flush=True,
        )
        rows.append(row)

    print(f"frontier: warmup {FRONTIER_IDS} @ budget {FRONTIER_BUDGET} ...",
          flush=True)
    frontier = bench_frontier()
    print(
        f"  unreduced exceeded budget: {frontier['unreduced_exceeded_budget']} | "
        f"reduced {frontier['reduced_states']} states, certified bound: "
        f"{frontier['reduced_certified_bound']}",
        flush=True,
    )

    print("statistical: sampled-schedule checking ...", flush=True)
    statistical = bench_statistical(args.quick)
    print(
        f"  {statistical['samples']} samples @ n={statistical['n']}, "
        f"IDmax={statistical['id_max']}: pass rate "
        f"{statistical['pass_rate']} in {statistical['seconds']}s "
        f"({statistical['samples_per_second']}/s) | fault self-test "
        f"caught={statistical['fault_self_test']['caught']}",
        flush=True,
    )

    reference = next(
        (
            row
            for row in rows
            if row["algorithm"] == "warmup" and row["ids"] == REFERENCE_IDS
        ),
        None,
    )
    reference_ok = (
        reference is not None
        and reference["state_reduction"] >= 10.0
        and reference["verdicts_agree"]
    )
    all_agree = all(row["verdicts_agree"] for row in rows)
    frontier_ok = (
        frontier["unreduced_exceeded_budget"]
        and frontier["reduced_certified_bound"]
    )
    statistical_ok = (
        statistical["violations"] == 0
        and statistical["fault_self_test"]["caught"]
        and statistical["fault_self_test"]["localized_to_instance"]
    )

    report = {
        "generated_by": "benchmarks/run_verification_bench.py"
        + (" --quick" if args.quick else ""),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": "explore_all_schedules vs explore_reduced "
        "(POR + counting states)",
        "grid": rows,
        "frontier": frontier,
        "statistical": statistical,
        "summary": {
            "reference_instance": {
                "algorithm": "warmup",
                "ids": REFERENCE_IDS,
                "state_reduction": reference["state_reduction"]
                if reference
                else None,
                "meets_10x": reference_ok,
            },
            "all_verdicts_agree": all_agree,
            "frontier_certified_beyond_unreduced": frontier_ok,
            "statistical_clean_and_self_test_caught": statistical_ok,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not (reference_ok and all_agree and frontier_ok and statistical_ok):
        print("ACCEPTANCE CRITERIA NOT MET — see summary in the JSON report")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
