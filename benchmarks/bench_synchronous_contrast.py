"""E10 — the synchronous contrast (paper, Section 1.2 related work).

"In synchronous rings, leader election can be performed by communicating
only O(n) messages": with lockstep rounds, silence carries information
and IDs can be encoded in time.  This bench measures the classic
TimeSlice algorithm against the paper's asynchronous content-oblivious
cost on identical IDs, exhibiting both sides of the trade:

* messages: n (synchronous, content-carrying, n known) vs exactly
  n(2*IDmax+1) (asynchronous, content-oblivious, uniform);
* time: IDmin*n rounds (the synchronous algorithm's hidden price) vs no
  global time at all.
"""

from __future__ import annotations

import random

from repro.core.terminating import run_terminating
from repro.synchronous import run_time_coded_election


def test_message_and_round_tradeoff(report, benchmark):
    rows = []
    rng = random.Random(9)
    for n in (2, 4, 8, 16, 32):
        ids = rng.sample(range(1, 5 * n), n)
        sync = run_time_coded_election(ids)
        oblivious = run_terminating(ids)
        rows.append(
            (
                n,
                max(ids),
                min(ids),
                sync.total_sent,
                sync.rounds_used,
                oblivious.total_pulses,
            )
        )
        assert sync.total_sent == n
        assert oblivious.total_pulses == n * (2 * max(ids) + 1)
    report.line(
        "E10: synchronous TimeSlice (n msgs, IDmin*n rounds, content+n known) "
        "vs asynchronous content-oblivious (n(2*IDmax+1) pulses, no time)"
    )
    report.table(
        ["n", "IDmax", "IDmin", "sync msgs", "sync rounds", "oblivious pulses"],
        rows,
    )
    ids = rng.sample(range(1, 100), 16)
    benchmark.pedantic(lambda: run_time_coded_election(ids), rounds=3, iterations=1)


def test_sync_messages_flat_in_id_magnitude(report, benchmark):
    """Scaling IDs 100x leaves the synchronous count at n — but multiplies
    its ROUND cost; the oblivious pulse count scales with IDmax instead."""
    n = 8
    rows = []
    for scale in (1, 10, 100):
        ids = [scale * k for k in range(1, n + 1)]
        sync = run_time_coded_election(ids)
        oblivious = run_terminating(ids)
        rows.append(
            (scale, sync.total_sent, sync.rounds_used, oblivious.total_pulses)
        )
        assert sync.total_sent == n
    report.line("E10b: ID magnitude sweep at n=8 — where each model pays")
    report.table(
        ["ID scale", "sync msgs", "sync rounds", "oblivious pulses"], rows
    )
    benchmark.pedantic(
        lambda: run_time_coded_election([10 * k for k in range(1, 9)]),
        rounds=3,
        iterations=1,
    )
