"""Graceful-degradation benchmark: success probability vs fault rate.

Sweeps the unified fault model (:mod:`repro.faults`) over a grid of
per-pulse fault rates and, per grid point, runs the recovery harness
(:func:`repro.verification.statistical.run_recovery_check`) on a fresh
sample of Algorithm 3 instances.  Each point records the recovered /
wrong-stable / stuck split and an exact Clopper-Pearson band on the
recovery probability.  Two properties are load-bearing for the
robustness contract recorded in ``docs/ROBUSTNESS.md``:

* **clean at zero** — the rate-0 control arm must recover every sampled
  instance (the fault harness itself must not perturb a fault-free
  run); and
* **monotone within bands** — success must not *improve* significantly
  as faults get worse: no later point's estimate may exceed an earlier
  point's upper confidence bound.

A second section exercises the recovery classifier end to end: a node
crash is injected mid-run, every sampled run must land in exactly one
of the three classes, and the first counterexample must replay from its
seeds alone.  A third section runs the adversarial worst-plan search
(:mod:`repro.adversary`) against an equal-evaluation-budget random
baseline and records both, so the bench tracks how much damage a
budgeted *correlated* adversary does beyond independent noise.

Results land in a machine-readable ``BENCH_faults.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/run_faults_bench.py          # full grid
    PYTHONPATH=src python benchmarks/run_faults_bench.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from typing import Dict, List, Optional

from repro.analysis.degradation import measure_degradation
from repro.faults.model import FaultModel, NodeCrash
from repro.verification.statistical import run_recovery_check

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DROP_RATES_FULL = [0.0, 0.005, 0.01, 0.02, 0.05]
DROP_RATES_QUICK = [0.0, 0.01, 0.05]
#: Duplication and spurious injection add pulses instead of removing
#: them, so the curves degrade much more slowly — probe further out.
NOISE_RATES_FULL = [0.0, 0.01, 0.05, 0.1]
NOISE_RATES_QUICK = [0.0, 0.05]
#: Per-(node, round) crash probabilities: a crash silences a whole node,
#: so the curve collapses far faster than the per-send channel kinds.
CRASH_RATES_FULL = [0.0, 0.005, 0.01, 0.02]
CRASH_RATES_QUICK = [0.0, 0.02]

SWEEP_FULL = {"samples": 400, "n": 6, "id_max": 64}
SWEEP_QUICK = {"samples": 64, "n": 5, "id_max": 40}


def bench_curve(
    kind: str,
    rates: List[float],
    quick: bool,
    farm_root: Optional[pathlib.Path] = None,
) -> Dict:
    """One degradation curve: recovery probability over the rate grid.

    With ``farm_root`` the sweep routes through the sweep farm
    (:mod:`repro.farm`), so re-running the bench against a warm root
    collects from cached shards instead of recomputing; the curve is
    bit-identical either way.
    """
    params = SWEEP_QUICK if quick else SWEEP_FULL
    t0 = time.perf_counter()
    curve = measure_degradation(
        rates,
        kind=kind,
        algorithm="nonoriented",
        n=params["n"],
        id_max=params["id_max"],
        samples=params["samples"],
        fault_seed=7,
        farm_root=farm_root,
    )
    seconds = time.perf_counter() - t0
    payload = curve.to_dict()
    payload["seconds"] = round(seconds, 4)
    if farm_root is not None:
        payload["farm_root"] = str(farm_root)
    return payload


CRASH_FULL = {"samples": 128, "n": 6, "id_max": 64}
CRASH_QUICK = {"samples": 32, "n": 5, "id_max": 40}


def bench_recovery_self_test(quick: bool) -> Dict:
    """Classifier end-to-end: a mid-run crash must be classified and
    the first counterexample must replay from its seeds alone."""
    params = CRASH_QUICK if quick else CRASH_FULL
    faults = FaultModel(crashes=(NodeCrash(node=1, at_round=3),))
    t0 = time.perf_counter()
    report = run_recovery_check(
        algorithm="nonoriented",
        n=params["n"],
        id_max=params["id_max"],
        samples=params["samples"],
        faults=faults,
        max_counterexamples=1,
    )
    seconds = time.perf_counter() - t0
    classified = (
        report.recovered + report.wrong_stable + report.stuck
        == report.samples
    )
    replayed = True
    first_invariant = None
    if report.counterexamples:
        first = report.counterexamples[0]
        first_invariant = first.first_invariant
        replayed = first.replay() is not None
    return {
        "injected": "crash node 1 at round 3 (no restart)",
        **params,
        "backend": report.backend,
        "recovered": report.recovered,
        "wrong_stable": report.wrong_stable,
        "stuck": report.stuck,
        "fault_events": dict(report.fault_events),
        "every_run_classified": classified,
        "counterexample_replayed": replayed,
        "first_violated_invariant": first_invariant,
        "seconds": round(seconds, 4),
    }


#: Adversarial worst-plan search coordinates.  The quick row pins the
#: CI smoke configuration (seeds included): cross-entropy over a tight
#: crash-restart/burst space where the 0-recovered floor is sparse, so
#: the found plan is information, not a trivial tie.
ADVERSARY_QUICK = {
    "budget": 3, "n": 6, "id_max": 48, "samples": 48,
    "iterations": 3, "population": 8,
}
ADVERSARY_FULL = {
    "budget": 4, "n": 6, "id_max": 64, "samples": 96,
    "iterations": 4, "population": 10,
}


def bench_worst_plan(
    quick: bool, farm_root: Optional[pathlib.Path] = None
) -> Dict:
    """Adversarial search: the worst budgeted correlated-fault plan.

    Runs the cross-entropy optimizer over the smoke plan space and an
    equal-evaluation-budget random baseline, and records both — the
    found plan is seed-replayable via ``repro faults replay`` from the
    equivalent CLI artifact.
    """
    from repro.adversary import (
        EvalSettings,
        PlanSpace,
        random_baseline,
        search_worst_plan,
    )

    params = ADVERSARY_QUICK if quick else ADVERSARY_FULL
    space = PlanSpace(
        n=params["n"],
        budget=params["budget"],
        restarts=(1, 2),
        drop_rates=(0.25,),
        max_drops=1,
        max_burst=1,
    )
    settings = EvalSettings(
        n=params["n"], id_max=params["id_max"], samples=params["samples"]
    )
    t0 = time.perf_counter()
    result = search_worst_plan(
        space,
        settings,
        strategy="cross-entropy",
        iterations=params["iterations"],
        population=params["population"],
        search_seed=1,
        farm_root=farm_root,
    )
    baseline = random_baseline(
        space,
        settings,
        count=result.evaluations,
        search_seed=101,
        farm_root=farm_root,
    )
    seconds = time.perf_counter() - t0
    return {
        **params,
        "strategy": result.strategy,
        "search_seed": result.search_seed,
        "baseline_seed": 101,
        "evaluations": result.evaluations,
        "worst": result.best.to_dict(),
        "baseline_best": baseline.to_dict(),
        "search_beats_or_ties_baseline": (
            result.best.rate_high <= baseline.rate_high
        ),
        "seconds": round(seconds, 4),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid for smoke runs"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_faults.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--farm",
        type=pathlib.Path,
        default=None,
        metavar="ROOT",
        help="route the degradation sweeps through the sweep farm at "
        "ROOT (warm roots collect from cache; results are identical)",
    )
    args = parser.parse_args(argv)

    drop_rates = DROP_RATES_QUICK if args.quick else DROP_RATES_FULL
    noise_rates = NOISE_RATES_QUICK if args.quick else NOISE_RATES_FULL
    crash_rates = CRASH_RATES_QUICK if args.quick else CRASH_RATES_FULL

    curves = {}
    for kind, rates in (
        ("drop", drop_rates),
        ("duplicate", noise_rates),
        ("spurious", noise_rates),
        ("crash", crash_rates),
    ):
        print(f"sweeping {kind} over {rates} ...", flush=True)
        curve = bench_curve(kind, rates, args.quick, farm_root=args.farm)
        for point in curve["points"]:
            print(
                f"  rate {point['rate']:<6} success "
                f"{point['success_rate']:.4f} "
                f"[{point['low']:.4f}, {point['high']:.4f}] "
                f"r/w/s {point['recovered']}/{point['wrong_stable']}/"
                f"{point['stuck']}",
                flush=True,
            )
        curves[kind] = curve

    print("recovery self-test: mid-run node crash ...", flush=True)
    self_test = bench_recovery_self_test(args.quick)
    print(
        f"  classified r/w/s {self_test['recovered']}/"
        f"{self_test['wrong_stable']}/{self_test['stuck']} | "
        f"counterexample replayed: {self_test['counterexample_replayed']}",
        flush=True,
    )

    print("adversarial worst-plan search ...", flush=True)
    worst_plan = bench_worst_plan(args.quick, farm_root=args.farm)
    print(
        f"  worst plan CP high {worst_plan['worst']['rate_high']:.4f} vs "
        f"baseline {worst_plan['baseline_best']['rate_high']:.4f} "
        f"({worst_plan['evaluations']} evaluations each)",
        flush=True,
    )

    curves_ok = all(
        curve["clean_at_zero"] and curve["monotone_within_bands"]
        for curve in curves.values()
    )
    self_test_ok = (
        self_test["every_run_classified"]
        and self_test["counterexample_replayed"]
    )

    report = {
        "generated_by": "benchmarks/run_faults_bench.py"
        + (" --quick" if args.quick else ""),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": "measure_degradation + run_recovery_check "
        "(unified fault model over the fleet)",
        "curves": curves,
        "recovery_self_test": self_test,
        "worst_plan": worst_plan,
        "summary": {
            "clean_at_zero": {
                kind: curve["clean_at_zero"] for kind, curve in curves.items()
            },
            "monotone_within_bands": {
                kind: curve["monotone_within_bands"]
                for kind, curve in curves.items()
            },
            "all_curves_degrade_gracefully": curves_ok,
            "crash_runs_classified_and_replayable": self_test_ok,
            "worst_plan_beats_or_ties_random": worst_plan[
                "search_beats_or_ties_baseline"
            ],
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not (curves_ok and self_test_ok):
        print("ACCEPTANCE CRITERIA NOT MET — see summary in the JSON report")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
