#!/usr/bin/env python3
"""Corollary 5 end-to-end: computing over a defective ring with NO root.

Censor-Hillel et al. (2023) showed arbitrary computation over fully
defective networks is possible *given a pre-elected root* — and
conjectured the root was necessary.  This paper disproves that on rings,
and this example runs the whole refutation:

1. A perfectly symmetric ring (no root, only unique IDs) runs Theorem 1's
   election.  Each node, at the moment it would terminate, *switches* to
   the second algorithm — safe because election terminates quiescently
   and the leader switches last (message-algorithm attribution,
   Section 1.1).
2. The elected leader then roots a content-oblivious transport in which
   plain pulses carry integers (unary data ticks + per-tick acks + a
   ring-circling delimiter), and the ring computes global functions:
   here, the temperature sum and maximum of a sensor ring.

Run:  python examples/rootless_computation.py
"""

from repro.core.composition import run_composed
from repro.defective.simulation import AllReduceProgram


def main() -> None:
    node_ids = [14, 3, 27, 9, 21]           # unique IDs, clockwise
    temperatures = [18, 22, 19, 31, 24]     # private per-node inputs

    print("Rootless fully defective sensor ring")
    print(f"  ids          : {node_ids}")
    print(f"  temperatures : {temperatures}\n")

    total = run_composed(
        node_ids, temperatures, AllReduceProgram(lambda a, b: a + b)
    )
    hottest = run_composed(node_ids, temperatures, AllReduceProgram(max))

    leader = total.leader
    print(f"Phase 1 elected node {leader} (ID {node_ids[leader]}) as root.")
    print(f"Phase 2 computed, at every node:")
    print(f"  sum of temperatures : {total.outputs[0]}")
    print(f"  max temperature     : {hottest.outputs[0]}")
    print(f"Total pulses (sum run): {total.total_pulses}")
    print(f"Quiescent termination : {total.run.quiescently_terminated}")
    print(f"Leader terminated last: "
          f"{total.run.termination_order[-1] == leader}")

    assert total.outputs == [sum(temperatures)] * 5
    assert hottest.outputs == [max(temperatures)] * 5
    assert total.run.quiescently_terminated
    print("\nCorollary 5 verified: computation without a pre-existing root.")


if __name__ == "__main__":
    main()
