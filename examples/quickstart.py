#!/usr/bin/env python3
"""Quickstart: elect a leader over a fully defective oriented ring.

Every message between nodes is corrupted down to a contentless pulse,
yet the ring elects its maximum-ID node with a *provably exact* message
budget — ``n * (2*IDmax + 1)`` pulses (Theorem 1) — and terminates
quiescently: when a node stops, no pulse is ever again in flight
towards it.

Run:  python examples/quickstart.py
"""

from repro import elect_leader_oriented


def main() -> None:
    ids = [3, 7, 5, 2]  # unique positive IDs, clockwise around the ring

    report = elect_leader_oriented(ids)

    print("Content-oblivious leader election (Theorem 1)")
    print(f"  ring (clockwise ids) : {ids}")
    print(f"  elected leader       : node {report.leader} (ID {ids[report.leader]})")
    print(f"  per-node outputs     : {[state.value for state in report.states]}")
    print(f"  pulses sent          : {report.total_pulses}")
    print(f"  paper's exact bound  : {report.claimed_bound}  (n(2*IDmax+1))")
    print(f"  terminated           : {report.terminated}")
    print(f"  quiescent            : {report.quiescent}")

    assert report.leader == ids.index(max(ids))
    assert report.total_pulses == report.claimed_bound
    print("\nAll Theorem 1 guarantees verified on this run.")


if __name__ == "__main__":
    main()
