#!/usr/bin/env python3
"""Theorem 3: electing a coordinator in a ring of identical devices.

A ring of factory-floor sensors: no serial numbers, no port alignment,
every frame corrupted beyond recognition — only pulse arrival order
survives.  Each device privately samples an ID with Algorithm 4's
geometric scheme; Lemma 18 guarantees the maximal sample is unique with
high probability, and Algorithm 3 then elects that device and orients
the ring.  The run stabilizes but can never announce termination (Itai &
Rodeh's impossibility).

Run:  python examples/anonymous_sensors.py
"""

from repro import run_anonymous


def main() -> None:
    n = 12          # ring size — unknown to the devices themselves
    c = 2.0         # confidence: failure probability is O(n^-c)

    print(f"Anonymous ring of {n} identical devices (c = {c})\n")

    for attempt, seed in enumerate((2028, 2040, 2080), start=1):
        outcome = run_anonymous(n, c=c, seed=seed)
        status = "SUCCESS" if outcome.succeeded else "collision, retry"
        print(f"attempt {attempt}: sampled IDs {outcome.sampled_ids}")
        print(
            f"  max unique: {outcome.max_unique}  ->  {status}; "
            f"pulses: {outcome.election.total_pulses}"
        )
        if outcome.succeeded:
            leader = outcome.election.leaders[0]
            print(
                f"  coordinator: device {leader} "
                f"(sampled ID {outcome.sampled_ids[leader]}); "
                f"ring consistently oriented: "
                f"{outcome.election.orientation_consistent}"
            )
            assert outcome.leader_holds_max_id
            break
    else:
        print("all attempts collided (probability O(n^-c) each; rerun)")

    print(
        "\nNote: devices cannot detect completion — quiescent stabilization "
        "only, as Theorem 3 requires."
    )


if __name__ == "__main__":
    main()
