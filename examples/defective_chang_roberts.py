#!/usr/bin/env python3
"""Chang-Roberts 1979 on a network where messages cannot carry bits.

The deepest consequence of the paper: once a leader exists (Theorem 1),
*any* asynchronous ring algorithm runs over fully defective channels
(Corollary 5).  This example takes that literally.  Chang-Roberts is the
classic election algorithm whose every message is an ID — pure content.
Here it executes end-to-end on a ring where every message is corrupted
to a contentless pulse:

1. Theorem 1's content-oblivious election picks a root (no assumptions
   beyond unique IDs);
2. the universal interpreter, rooted there, circulates a serialization
   token whose pulse-counts encode the simulated messages;
3. Chang-Roberts runs unchanged on top and elects... the same node it
   would elect natively.

Yes, this elects a leader twice.  That is the point: the second election
is an arbitrary content-carrying computation, demonstrating none of the
1979 algorithm's assumptions survive — yet it still runs.

Run:  python examples/defective_chang_roberts.py
"""

from repro.baselines import run_baseline
from repro.baselines.chang_roberts import ChangRobertsNode
from repro.core.composition import run_simulated_composed
from repro.defective.ring_algorithms import SimChangRoberts


def main() -> None:
    ids = [4, 9, 2, 7]

    native = run_baseline(ChangRobertsNode, ids)
    print("Native Chang-Roberts (messages carry IDs):")
    print(f"  winner: node {native.leaders[0]} (ID {ids[native.leaders[0]]}), "
          f"{native.total_messages} messages\n")

    outcome = run_simulated_composed(ids, [SimChangRoberts(i) for i in ids])
    print("Chang-Roberts over a fully defective ring, no pre-existing root:")
    print(f"  phase 1 (Theorem 1) elected node {outcome.leader} as interpreter root")
    print(f"  simulated outputs: {outcome.outputs}")
    print(f"  total pulses (election + simulation): {outcome.total_pulses}")
    print(f"  quiescent termination: {outcome.run.quiescently_terminated}")

    sim_winner = outcome.outputs[0][1]
    assert sim_winner == ids[native.leaders[0]] == max(ids)
    print(f"\nBoth worlds crowned ID {sim_winner}. "
          "Content was never needed — only pulse order.")


if __name__ == "__main__":
    main()
