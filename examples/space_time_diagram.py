#!/usr/bin/env python3
"""Watching Theorem 1 happen: an ASCII space-time diagram.

Runs Algorithm 2 on a 4-ring with full event recording and renders the
execution: each row is one pulse delivery (``*0`` = clockwise pulse
arriving, ``*1`` = counterclockwise), ``##`` rows are terminations.  You
can see the warm-up's clockwise wave, the lagging counterclockwise
instance, and finally the termination pulse sweeping counterclockwise
from the leader — who, as the composition discipline requires, halts
last.

Run:  python examples/space_time_diagram.py
"""

from repro.core.terminating import TerminatingNode
from repro.simulator.engine import Engine
from repro.simulator.ring import build_oriented_ring
from repro.simulator.timeline import render_space_time, summarize_counters


def main() -> None:
    ids = [2, 4, 1, 3]
    nodes = [TerminatingNode(node_id) for node_id in ids]
    topology = build_oriented_ring(nodes)
    result = Engine(topology.network, record_events=True).run()

    print(f"Algorithm 2 on clockwise ids {ids} "
          f"({result.total_sent} pulses = n(2*IDmax+1)):\n")
    print(render_space_time(result, len(ids), labels=[f"id{v}" for v in ids]))
    print()
    print(summarize_counters(result, len(ids)))
    leader = result.termination_order[-1]
    print(f"\nlast to terminate: node {leader} (ID {ids[leader]}) — the leader.")


if __name__ == "__main__":
    main()
