#!/usr/bin/env python3
"""What does losing message content cost?  (Theorem 1 vs the classics.)

Runs the paper's algorithm and five classic content-carrying elections
(Chang-Roberts, Le Lann, Hirschberg-Sinclair, Peterson, Dolev-Klawe-
Rodeh) on identical rings and prints the measured message counts, plus
Theorem 4's lower bound showing the gap is inherent: any content-
oblivious election must pay ``n * floor(log2(IDmax / n))`` pulses, so
its cost necessarily grows with the ID space while content-carrying
algorithms stay at ``O(n log n)``.

Run:  python examples/cost_of_obliviousness.py
"""

import random

from repro import lower_bound_pulses, run_terminating
from repro.baselines import ALL_BASELINES, run_baseline


def row(n: int, id_spread: int, seed: int = 0):
    ids = random.Random(seed + id_spread).sample(range(1, id_spread + 1), n)
    cells = {"n": n, "IDmax": max(ids)}
    cells["oblivious"] = run_terminating(ids).total_pulses
    for name, cls in ALL_BASELINES.items():
        cells[name] = run_baseline(cls, ids).total_messages
    cells["thm4 floor"] = lower_bound_pulses(n, max(ids))
    return cells


def main() -> None:
    print("Messages to elect a leader on a 16-node asynchronous ring\n")
    columns = [
        "IDmax", "oblivious", "thm4 floor", "chang_roberts", "lelann",
        "hirschberg_sinclair", "peterson", "dolev_klawe_rodeh", "franklin",
    ]
    header = "".join(f"{column:>20}" for column in columns)
    print(header)
    print("-" * len(header))
    for id_spread in (16, 64, 256, 1024, 4096):
        cells = row(16, id_spread)
        print("".join(f"{cells[column]:>20}" for column in columns))

    print(
        "\nReading: the content-oblivious cost is pinned to IDmax "
        "(Theorem 1: exactly n(2*IDmax+1)); content-carrying algorithms "
        "ignore ID magnitude entirely.  Theorem 4's floor certifies the "
        "growth is inherent — no content-oblivious algorithm escapes it."
    )


if __name__ == "__main__":
    main()
