#!/usr/bin/env python3
"""Exhaustively verifying Theorem 1 — every schedule, not a sample.

The asynchronous adversary controls delivery order.  For small rings the
reachable state space is finite and modest, so this example runs the
bounded model checker over *all* schedules of several instances and
prints the certificates: confluence (all executions funnel into the one
correct terminal state), zero quiescent-termination violations, and the
state/transition counts quantifying the covered nondeterminism.

As a contrast, the same checker is pointed at the deliberately broken
variant of Algorithm 2 (CCW buffering removed — the paper's "subtle
prioritization" ablated) and finds its bad schedules automatically.

Run:  python examples/verify_all_schedules.py
"""

from repro.core.terminating import TerminatingNode
from repro.simulator.ring import build_oriented_ring
from repro.verification import explore_all_schedules


def check(ids, strict_lag=True):
    def factory():
        return build_oriented_ring(
            [TerminatingNode(i, strict_lag=strict_lag) for i in ids]
        ).network

    return explore_all_schedules(factory)


def main() -> None:
    print("Algorithm 2 under ALL schedules (bounded model checking)\n")
    print(f"{'ids':>14} {'states':>7} {'transitions':>12} "
          f"{'terminals':>10} {'violations':>11} {'confluent':>10}")
    for ids in ([1, 2], [2, 3, 1], [3, 1, 2], [1, 2, 3, 4]):
        result = check(ids)
        print(f"{str(ids):>14} {result.states_explored:>7} "
              f"{result.transitions:>12} {len(result.terminal_fingerprints):>10} "
              f"{result.quiescence_violations:>11} {str(result.confluent):>10}")
        assert result.confluent and result.quiescence_violations == 0

    print("\nNow the ablated variant (strict_lag=False) on ids [1, 2]:")
    broken = check([1, 2], strict_lag=False)
    print(f"  terminal states: {len(broken.terminal_fingerprints)} "
          f"(should be 1), violations: {broken.quiescence_violations}")
    print("  -> the model checker finds the lag discipline's necessity "
          "without any hand-crafted adversary.")


if __name__ == "__main__":
    main()
