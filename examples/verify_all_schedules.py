#!/usr/bin/env python3
"""Exhaustively verifying Theorem 1 — every schedule, not a sample.

The asynchronous adversary controls delivery order.  For small rings the
reachable state space is finite, so this example model-checks *all*
schedules of several instances and prints the certificates: confluence
(all executions funnel into the one correct terminal state), zero
quiescent-termination violations, and the exact pulse count.

Two search strategies run side by side: the unreduced reference search
(one branch per non-empty channel at every state) and the
partial-order-reduced search (one persistent set of commuting deliveries
per state, counting-state fingerprints — see docs/VERIFICATION.md).  The
table's last column shows how many times fewer states the reduction
visits while certifying the same verdicts.

As a contrast, the reduced checker is pointed at the deliberately broken
variant of Algorithm 2 (CCW buffering removed — the paper's "subtle
prioritization" ablated) and finds its bad schedules automatically.

Run:  python examples/verify_all_schedules.py
"""

from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.simulator.ring import build_oriented_ring
from repro.verification import explore_all_schedules, explore_reduced


def factory(node_cls, ids, **kwargs):
    def build():
        return build_oriented_ring(
            [node_cls(i, **kwargs) for i in ids]
        ).network

    return build


def main() -> None:
    print("Algorithms 1 and 2 under ALL schedules (bounded model checking)\n")
    print(f"{'algorithm':>12} {'ids':>14} {'unreduced':>10} {'reduced':>8} "
          f"{'violations':>11} {'confluent':>10} {'reduction':>10}")
    for node_cls, name, ids in (
        (TerminatingNode, "terminating", [1, 2]),
        (TerminatingNode, "terminating", [2, 3, 1]),
        (TerminatingNode, "terminating", [1, 2, 3, 4]),
        (WarmupNode, "warmup", [3, 1, 2]),
        (WarmupNode, "warmup", [1, 2, 3, 4, 5, 6]),
    ):
        full = explore_all_schedules(factory(node_cls, ids))
        reduced = explore_reduced(factory(node_cls, ids))
        assert set(full.terminal_node_fingerprints) == set(
            reduced.terminal_node_fingerprints
        )
        assert reduced.confluent and reduced.quiescence_violations == 0
        factor = full.states_explored / reduced.states_explored
        print(f"{name:>12} {str(ids):>14} {full.states_explored:>10} "
              f"{reduced.states_explored:>8} "
              f"{reduced.quiescence_violations:>11} "
              f"{str(reduced.confluent):>10} {factor:>9.1f}x")

    print("\nNow the ablated variant (strict_lag=False) on ids [1, 2]:")
    broken = explore_reduced(factory(TerminatingNode, [1, 2], strict_lag=False))
    print(f"  terminal states: {len(broken.terminal_node_fingerprints)} "
          f"(should be 1), violations: {broken.quiescence_violations}")
    print("  -> the model checker finds the lag discipline's necessity "
          "without any hand-crafted adversary.")


if __name__ == "__main__":
    main()
