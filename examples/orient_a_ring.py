#!/usr/bin/env python3
"""Repairing a scrambled ring: election + orientation without port order.

This is the paper's Figure 1 scenario (Section 4): nodes of a ring have
two ports in *arbitrary* order — none of them knows which port faces
clockwise — and all message content is destroyed in transit.  Algorithm 3
nevertheless elects the maximum-ID node and has every node label its
clockwise port consistently, using exactly ``n(2*IDmax + 1)`` pulses
(Theorem 2).  The algorithm stabilizes (all activity provably ceases) but
cannot announce termination — that is inherent to non-oriented rings.

Run:  python examples/orient_a_ring.py
"""

import random

from repro import elect_leader_nonoriented
from repro.core.nonoriented import run_nonoriented


def main() -> None:
    rng = random.Random(2024)
    ids = [12, 31, 7, 25, 3, 18]
    flips = [rng.random() < 0.5 for _ in ids]  # adversarial port scrambling

    print("Non-oriented ring: per-node port scrambling (True = swapped):")
    print(f"  ids   : {ids}")
    print(f"  flips : {flips}\n")

    outcome = run_nonoriented(ids, flips=flips)

    leader = outcome.leaders[0]
    print(f"Elected leader : node {leader} (ID {ids[leader]})")
    print(f"Pulses sent    : {outcome.total_pulses} "
          f"(paper's exact claim: {outcome.claimed_message_bound})")
    print("Computed clockwise ports (one consistent rotation):")
    for node_index, label in enumerate(outcome.cw_port_labels):
        truth = outcome.topology.cw_port(node_index)
        print(
            f"  node {node_index} (ID {ids[node_index]:>2}): labels Port_{label} as CW"
            f"   [ground-truth CW port: Port_{truth}]"
        )
    print(f"\nOrientation consistent: {outcome.orientation_consistent}")
    assert outcome.orientation_consistent
    assert outcome.total_pulses == outcome.claimed_message_bound

    # The same thing through the uniform front door:
    report = elect_leader_nonoriented(ids, flips=flips)
    assert report.leader == leader
    print("Front-door API agrees. Theorem 2 verified on this run.")


if __name__ == "__main__":
    main()
